// Package qos implements the SLO-feedback dynamic-batching and
// multi-tenant QoS controller: an AIMD loop with hysteresis that resizes
// the decode batch cap and the prefill chunk-token budget from observed
// TTFT/TPOT violations against per-tenant-class SLO targets and live KV
// headroom, plus the tenant-class policy (premium / standard /
// best-effort) the engines, the pressure gate, and the scheduler consult.
//
// The controller is pure policy on the single simulator thread: engines
// read the current caps through DecodeCap/PrefillTokenBudget and feed
// observations back through ObserveStep/ObserveCompletion; decisions
// happen only at virtual-time window boundaries, so a replica's control
// trajectory is a pure function of its own event stream — the property
// that keeps cluster runs byte-identical serial vs parallel.
//
// The loop composes with the pressure gate's watermarks instead of
// fighting them: increases are gated on KV occupancy below the pool's
// low watermark (the gate's own relaxed region), so the controller only
// grows batches where the gate would admit freely, and backs off
// multiplicatively where the gate is about to defer.
package qos

import (
	"fmt"

	"repro/internal/metrics"
	"repro/internal/pressure"
	"repro/internal/timeline"
	"repro/internal/units"
)

// Class is a tenant service class, ordered by priority: best-effort
// sheds first, premium last.
type Class int

const (
	// BestEffort is the lowest class: loosest targets, first to defer
	// and shed under pressure.
	BestEffort Class = iota
	// Standard is the default class for untagged tenants.
	Standard
	// Premium is the strictest class: base SLO targets, protected last.
	Premium
	// NumClasses sizes per-class arrays.
	NumClasses = 3
)

// Tenant tags as they appear on workload requests.
const (
	TenantPremium    = "premium"
	TenantStandard   = "standard"
	TenantBestEffort = "best-effort"
)

// String returns the tenant tag for the class.
func (c Class) String() string {
	switch c {
	case Premium:
		return TenantPremium
	case BestEffort:
		return TenantBestEffort
	}
	return TenantStandard
}

// ClassOf maps a workload tenant tag to its class. Unknown and empty
// tags are Standard, so untagged single-tenant traces behave as one
// standard tenant.
func ClassOf(tenant string) Class {
	switch tenant {
	case TenantPremium:
		return Premium
	case TenantBestEffort:
		return BestEffort
	}
	return Standard
}

// Prio maps the class onto the pressure gate's admission priority.
func (c Class) Prio() pressure.Prio {
	switch c {
	case Premium:
		return pressure.PrioPremium
	case BestEffort:
		return pressure.PrioBestEffort
	}
	return pressure.PrioStandard
}

// Config parameterizes the controller. Zero fields take the defaults
// documented on each; see DefaultConfig.
type Config struct {
	// Window is the virtual-time width of one control interval: the
	// controller re-decides the caps at most once per window, from the
	// observations accumulated inside it. Default 250ms.
	Window units.Seconds
	// MinDecodeBatch / MinPrefillTokens floor the multiplicative
	// decrease (defaults 8 and 2048). The ceilings are the engines'
	// static caps, set through Init.
	MinDecodeBatch   int
	MinPrefillTokens int
	// DecodeStep / PrefillStep are the additive-increase increments per
	// window with slack (defaults 16 and 2048).
	DecodeStep  int
	PrefillStep int
	// DecreaseFactor is the multiplicative decrease applied to both caps
	// on an SLO violation. Default 0.7.
	DecreaseFactor float64
	// DeadBand is the hysteresis band around a violation ratio of 1.0:
	// inside [1-DeadBand, 1+DeadBand] the controller holds. Default 0.1.
	DeadBand float64
	// CooldownWindows is how many windows after a decrease the
	// controller refuses to increase again — with the dead band, the
	// hysteresis that keeps a square-wave load from making the caps
	// oscillate every window. Default 2.
	CooldownWindows int
	// HeadroomFloor is the KV occupancy at or above which increases are
	// suppressed regardless of slack, composing with the pressure gate:
	// growth happens only in the gate's freely-admitting region. Default
	// is the pressure subsystem's low watermark (0.80).
	HeadroomFloor float64
	// SLOScale loosens the base SLO per class: class c's targets are the
	// dataset targets times SLOScale[c]. Defaults {4, 2, 1} for
	// {best-effort, standard, premium} — premium is held to the paper's
	// targets, lower classes trade latency for admission.
	SLOScale [NumClasses]float64
}

// DefaultConfig returns the documented defaults.
func DefaultConfig() Config {
	return Config{
		Window:           units.FromMs(250),
		MinDecodeBatch:   8,
		MinPrefillTokens: 2048,
		DecodeStep:       16,
		PrefillStep:      2048,
		DecreaseFactor:   0.7,
		DeadBand:         0.1,
		CooldownWindows:  2,
		HeadroomFloor:    pressure.DefaultConfig().LowWatermark,
		SLOScale:         [NumClasses]float64{4, 2, 1},
	}
}

// withDefaults fills zero fields from DefaultConfig.
func (c Config) withDefaults() Config {
	d := DefaultConfig()
	if c.Window <= 0 {
		c.Window = d.Window
	}
	if c.MinDecodeBatch <= 0 {
		c.MinDecodeBatch = d.MinDecodeBatch
	}
	if c.MinPrefillTokens <= 0 {
		c.MinPrefillTokens = d.MinPrefillTokens
	}
	if c.DecodeStep <= 0 {
		c.DecodeStep = d.DecodeStep
	}
	if c.PrefillStep <= 0 {
		c.PrefillStep = d.PrefillStep
	}
	if c.DecreaseFactor <= 0 {
		c.DecreaseFactor = d.DecreaseFactor
	}
	if c.DeadBand <= 0 {
		c.DeadBand = d.DeadBand
	}
	if c.CooldownWindows <= 0 {
		c.CooldownWindows = d.CooldownWindows
	}
	if c.HeadroomFloor <= 0 {
		c.HeadroomFloor = d.HeadroomFloor
	}
	for i := range c.SLOScale {
		if c.SLOScale[i] <= 0 {
			c.SLOScale[i] = d.SLOScale[i]
		}
	}
	return c
}

// SLOFor returns the class's latency targets: the base SLO scaled by
// SLOScale[class].
func (c Config) SLOFor(class Class, base metrics.SLO) metrics.SLO {
	s := c.SLOScale[class]
	return metrics.SLO{NormTTFTMs: base.NormTTFTMs * s, TPOTMs: base.TPOTMs * s}
}

// Accounting is the per-class token and outcome bookkeeping the engines
// report into. Token counts conserve: every computed prefill token and
// every generated decode token lands in exactly one class bucket.
type Accounting struct {
	PrefillTokens [NumClasses]int
	DecodeTokens  [NumClasses]int
	Completed     [NumClasses]int
	Shed          [NumClasses]int
}

// Add accumulates another run's accounting into a (cluster aggregation).
func (a *Accounting) Add(o Accounting) {
	for c := 0; c < NumClasses; c++ {
		a.PrefillTokens[c] += o.PrefillTokens[c]
		a.DecodeTokens[c] += o.DecodeTokens[c]
		a.Completed[c] += o.Completed[c]
		a.Shed[c] += o.Shed[c]
	}
}

// TotalPrefillTokens sums the per-class prefill buckets.
func (a Accounting) TotalPrefillTokens() int {
	n := 0
	for c := 0; c < NumClasses; c++ {
		n += a.PrefillTokens[c]
	}
	return n
}

// TotalDecodeTokens sums the per-class decode buckets.
func (a Accounting) TotalDecodeTokens() int {
	n := 0
	for c := 0; c < NumClasses; c++ {
		n += a.DecodeTokens[c]
	}
	return n
}

// Metrics is the controller's decision accounting for one run.
type Metrics struct {
	Decisions int // windows decided
	Increases int // additive-increase steps taken
	Decreases int // multiplicative-decrease steps taken
	// FinalDecodeCap / FinalPrefillTokens are the caps at end of run.
	FinalDecodeCap     int
	FinalPrefillTokens int
	Accounting         Accounting
}

// Controller is the per-replica QoS policy. Not safe for concurrent use;
// the simulation is single-threaded by design.
type Controller struct {
	cfg  Config
	base metrics.SLO
	tl   *timeline.Recorder

	maxDecode  int
	maxPrefill int

	decodeCap     int
	prefillTokens int

	// Window accumulator: the worst priority-weighted violation ratio
	// observed since the last decision, and how many observations fed it.
	winViol    float64
	winSamples int
	nextDecide units.Seconds
	started    bool
	// cooldown counts windows remaining in which increases are refused
	// after a decrease (the AIMD hysteresis, with the dead band).
	cooldown int

	acct      Accounting
	decisions int
	increases int
	decreases int
}

// New builds a controller enforcing base targets under cfg; zero cfg
// fields take defaults. maxDecode and maxPrefillTokens are the engines'
// static caps — the controller's ceilings and starting point, so an idle
// or satisfied system behaves exactly like the static configuration.
func New(base metrics.SLO, cfg Config, maxDecode, maxPrefillTokens int) *Controller {
	c := cfg.withDefaults()
	if maxDecode <= 0 || maxPrefillTokens <= 0 {
		panic(fmt.Sprintf("qos: invalid caps decode=%d prefillTokens=%d", maxDecode, maxPrefillTokens))
	}
	if c.MinDecodeBatch > maxDecode {
		c.MinDecodeBatch = maxDecode
	}
	if c.MinPrefillTokens > maxPrefillTokens {
		c.MinPrefillTokens = maxPrefillTokens
	}
	return &Controller{
		cfg: c, base: base,
		maxDecode: maxDecode, maxPrefill: maxPrefillTokens,
		decodeCap: maxDecode, prefillTokens: maxPrefillTokens,
	}
}

// SetTimeline attaches a recorder; nil disables qos decision instants.
func (c *Controller) SetTimeline(tl *timeline.Recorder) { c.tl = tl }

// Config returns the effective (defaulted) configuration.
func (c *Controller) Config() Config { return c.cfg }

// DecodeCap returns the current decode batch cap.
//
//bullet:hotpath
func (c *Controller) DecodeCap() int { return c.decodeCap }

// PrefillTokenBudget returns the current prefill chunk-token budget.
//
//bullet:hotpath
func (c *Controller) PrefillTokenBudget() int { return c.prefillTokens }

// WeightOf returns the scheduler fairness weight of a tenant tag: the
// reciprocal of the class's SLO scale, so a premium request's deadline
// urgency and predicted-TTFT contribution count at full strength while
// lower classes are discounted by exactly the slack their targets grant.
//
//bullet:hotpath
func (c *Controller) WeightOf(class Class) float64 {
	return 1 / c.cfg.SLOScale[class]
}

// Accounting returns a copy of the per-class token bookkeeping.
func (c *Controller) Accounting() Accounting { return c.acct }

// Metrics returns the controller's decision accounting.
func (c *Controller) Metrics() Metrics {
	return Metrics{
		Decisions: c.decisions, Increases: c.increases, Decreases: c.decreases,
		FinalDecodeCap: c.decodeCap, FinalPrefillTokens: c.prefillTokens,
		Accounting: c.acct,
	}
}

// AddPrefill accounts tokens computed in a finished prefill for class.
//
//bullet:hotpath
func (c *Controller) AddPrefill(class Class, tokens int) {
	c.acct.PrefillTokens[class] += tokens
}

// AddDecode accounts one generated decode token for class.
//
//bullet:hotpath
func (c *Controller) AddDecode(class Class) {
	c.acct.DecodeTokens[class]++
}

// RecordShed accounts one shed request of class.
func (c *Controller) RecordShed(class Class) {
	c.acct.Shed[class]++
}

// violation folds one observation into the window accumulator: v is the
// priority-weighted SLO violation ratio (1.0 = exactly on target).
func (c *Controller) observe(v float64) {
	if v > c.winViol {
		c.winViol = v
	}
	c.winSamples++
}

// ObserveStep feeds one decode iteration into the feedback loop: the
// step duration is the TPOT increment every batched request just paid,
// measured against the premium target (the strictest class that may be
// in the batch). It then runs the window-boundary decision if due —
// the per-step call site that makes the loop react within one window
// even when no request completes.
//
//bullet:hotpath
func (c *Controller) ObserveStep(now units.Seconds, batch int, stepDur units.Seconds, occupancy float64) {
	if batch > 0 && c.base.TPOTMs > 0 {
		c.observe(stepDur.Ms() / c.base.TPOTMs)
	}
	c.Tick(now, occupancy)
}

// ObserveCompletion feeds one finished request into the feedback loop:
// its normalized TTFT and TPOT are measured against its class's scaled
// targets and weighted by class priority, so a premium miss drives the
// caps down at full strength while a best-effort miss is discounted.
//
//bullet:hotpath
func (c *Controller) ObserveCompletion(now units.Seconds, m metrics.Request, occupancy float64) {
	class := ClassOf(m.Tenant)
	slo := c.cfg.SLOFor(class, c.base)
	w := c.WeightOf(class)
	c.acct.Completed[class]++
	if slo.NormTTFTMs > 0 {
		c.observe(w * (m.NormTTFTMs() / slo.NormTTFTMs))
	}
	if slo.TPOTMs > 0 && m.OutputTokens > 1 {
		c.observe(w * (m.TPOTMs() / slo.TPOTMs))
	}
	c.Tick(now, occupancy)
}

// Tick runs the window-boundary decision when the current window has
// elapsed; between boundaries it is a cheap comparison. Decisions
// depend only on virtual time and the replica's own observations, so
// control trajectories replay bit-identically.
//
//bullet:hotpath
func (c *Controller) Tick(now units.Seconds, occupancy float64) {
	if !c.started {
		c.started = true
		c.nextDecide = now + c.cfg.Window
		return
	}
	if now < c.nextDecide {
		return
	}
	c.decide(now, occupancy)
}

// decide is one AIMD step: multiplicative decrease when the window's
// worst weighted violation exceeds the dead band, additive increase when
// there is slack beyond it, KV headroom under the floor, and no cooldown
// in force; hold otherwise. Windows without observations hold.
//
//bullet:hotpath
func (c *Controller) decide(now units.Seconds, occupancy float64) {
	v := c.winViol
	n := c.winSamples
	c.winViol = 0
	c.winSamples = 0
	c.nextDecide = now + c.cfg.Window
	c.decisions++

	dir := 0
	switch {
	case n == 0:
		// No traffic this window: hold.
	case v > 1+c.cfg.DeadBand:
		nd := clamp(int(float64(c.decodeCap)*c.cfg.DecreaseFactor), c.cfg.MinDecodeBatch, c.maxDecode)
		np := clamp(int(float64(c.prefillTokens)*c.cfg.DecreaseFactor), c.cfg.MinPrefillTokens, c.maxPrefill)
		if nd < c.decodeCap || np < c.prefillTokens {
			dir = -1
			c.decreases++
		}
		c.decodeCap, c.prefillTokens = nd, np
		c.cooldown = c.cfg.CooldownWindows
	case v < 1-c.cfg.DeadBand && occupancy < c.cfg.HeadroomFloor:
		if c.cooldown > 0 {
			c.cooldown--
			break
		}
		nd := clamp(c.decodeCap+c.cfg.DecodeStep, c.cfg.MinDecodeBatch, c.maxDecode)
		np := clamp(c.prefillTokens+c.cfg.PrefillStep, c.cfg.MinPrefillTokens, c.maxPrefill)
		if nd > c.decodeCap || np > c.prefillTokens {
			dir = 1
			c.increases++
		}
		c.decodeCap, c.prefillTokens = nd, np
	default:
		// Dead band (or no headroom): hold, and let a pending cooldown
		// expire.
		if c.cooldown > 0 {
			c.cooldown--
		}
	}
	if c.tl != nil {
		c.tl.Instant("qos", "decide", now,
			timeline.F("violation", v),
			timeline.I("samples", n),
			timeline.I("dir", dir),
			timeline.I("decode_cap", c.decodeCap),
			timeline.I("prefill_tokens", c.prefillTokens),
			timeline.F("occupancy", occupancy),
		)
	}
}

//bullet:hotpath
func clamp(v, lo, hi int) int {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}
