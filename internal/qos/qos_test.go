package qos

import (
	"testing"

	"repro/internal/metrics"
	"repro/internal/pressure"
	"repro/internal/timeline"
	"repro/internal/units"
)

var baseSLO = metrics.SLO{NormTTFTMs: 1.5, TPOTMs: 200}

func newTest(cfg Config) *Controller {
	return New(baseSLO, cfg, 256, 16384)
}

func TestClassMapping(t *testing.T) {
	cases := []struct {
		tenant string
		class  Class
		prio   pressure.Prio
	}{
		{"premium", Premium, pressure.PrioPremium},
		{"standard", Standard, pressure.PrioStandard},
		{"best-effort", BestEffort, pressure.PrioBestEffort},
		{"", Standard, pressure.PrioStandard},
		{"unknown-tag", Standard, pressure.PrioStandard},
	}
	for _, c := range cases {
		if got := ClassOf(c.tenant); got != c.class {
			t.Errorf("ClassOf(%q) = %v, want %v", c.tenant, got, c.class)
		}
		if got := ClassOf(c.tenant).Prio(); got != c.prio {
			t.Errorf("ClassOf(%q).Prio() = %v, want %v", c.tenant, got, c.prio)
		}
	}
	for _, class := range []Class{Premium, Standard, BestEffort} {
		if ClassOf(class.String()) != class {
			t.Errorf("ClassOf(%v.String()) does not round-trip", class)
		}
	}
}

func TestConfigDefaults(t *testing.T) {
	c := newTest(Config{})
	cfg := c.Config()
	d := DefaultConfig()
	if cfg != d {
		t.Fatalf("zero config did not take defaults: got %+v want %+v", cfg, d)
	}
	if c.DecodeCap() != 256 || c.PrefillTokenBudget() != 16384 {
		t.Fatalf("caps not initialized to engine maxes: %d/%d", c.DecodeCap(), c.PrefillTokenBudget())
	}
	// SLOFor scales both targets by the class scale.
	slo := cfg.SLOFor(BestEffort, baseSLO)
	if slo.NormTTFTMs != baseSLO.NormTTFTMs*4 || slo.TPOTMs != baseSLO.TPOTMs*4 {
		t.Fatalf("best-effort SLO not 4x base: %+v", slo)
	}
	if cfg.SLOFor(Premium, baseSLO) != baseSLO {
		t.Fatalf("premium SLO must be the base targets")
	}
	// Weight is the reciprocal scale: premium full strength.
	if w := c.WeightOf(Premium); w != 1 {
		t.Fatalf("premium weight = %v, want 1", w)
	}
	if w := c.WeightOf(BestEffort); w != 0.25 {
		t.Fatalf("best-effort weight = %v, want 0.25", w)
	}
}

func TestNewPanicsOnInvalidCaps(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("New with zero caps must panic")
		}
	}()
	New(baseSLO, Config{}, 0, 0)
}

// step advances the controller one full window with a constant violation
// ratio v observed at occupancy occ, and returns the decode cap after
// the boundary decision.
func step(c *Controller, now *units.Seconds, v, occ float64) int {
	w := c.Config().Window
	c.Tick(*now, occ) // first call arms the window
	c.observeAt(*now, v, occ)
	*now += w
	c.Tick(*now, occ)
	return c.DecodeCap()
}

// observeAt feeds one synthetic weighted-violation observation. It uses
// ObserveStep with a step duration chosen so stepMs/TPOT = v, which is
// exactly the premium-weighted ratio the controller folds in.
func (c *Controller) observeAt(now units.Seconds, v, occ float64) {
	c.ObserveStep(now, 1, units.FromMs(v*c.base.TPOTMs), occ)
}

func TestDecreaseOnViolation(t *testing.T) {
	c := newTest(Config{})
	now := units.Seconds(0)
	before := c.DecodeCap()
	after := step(c, &now, 2.0, 0.5) // gross violation
	if after >= before {
		t.Fatalf("violation did not shrink decode cap: %d -> %d", before, after)
	}
	wantD := int(float64(before) * c.Config().DecreaseFactor)
	if after != wantD {
		t.Fatalf("decode cap = %d, want %d", after, wantD)
	}
	wantP := int(16384 * c.Config().DecreaseFactor)
	if got := c.PrefillTokenBudget(); got != wantP {
		t.Fatalf("prefill budget = %d, want %d", got, wantP)
	}
	m := c.Metrics()
	if m.Decreases != 1 || m.Increases != 0 || m.Decisions != 1 {
		t.Fatalf("unexpected decision accounting: %+v", m)
	}
}

func TestIncreaseNeedsSlackAndHeadroom(t *testing.T) {
	// Start from a reduced cap so there is room to grow.
	c := newTest(Config{})
	now := units.Seconds(0)
	step(c, &now, 2.0, 0.5) // shrink once; cooldown armed
	shrunk := c.DecodeCap()

	// Slack with occupancy above the headroom floor: hold forever.
	for i := 0; i < 5; i++ {
		if got := step(c, &now, 0.2, 0.95); got != shrunk {
			t.Fatalf("cap grew at %v occupancy: %d -> %d", 0.95, shrunk, got)
		}
	}
	// Slack with headroom: cooldown has long expired, additive growth.
	grown := step(c, &now, 0.2, 0.5)
	if grown != shrunk+c.Config().DecodeStep {
		t.Fatalf("additive increase: got %d, want %d", grown, shrunk+c.Config().DecodeStep)
	}
}

func TestCapsClampToBounds(t *testing.T) {
	c := newTest(Config{})
	now := units.Seconds(0)
	// Hammer violations: caps must floor at the minimums, never below.
	for i := 0; i < 50; i++ {
		step(c, &now, 5.0, 0.99)
	}
	if c.DecodeCap() != c.Config().MinDecodeBatch {
		t.Fatalf("decode cap floored at %d, want %d", c.DecodeCap(), c.Config().MinDecodeBatch)
	}
	if c.PrefillTokenBudget() != c.Config().MinPrefillTokens {
		t.Fatalf("prefill budget floored at %d, want %d", c.PrefillTokenBudget(), c.Config().MinPrefillTokens)
	}
	// Sustained slack: caps must ceiling at the engine maxes, never above.
	for i := 0; i < 100; i++ {
		step(c, &now, 0.1, 0.2)
	}
	if c.DecodeCap() != 256 || c.PrefillTokenBudget() != 16384 {
		t.Fatalf("caps did not return to maxes: %d/%d", c.DecodeCap(), c.PrefillTokenBudget())
	}
}

// TestCapMonotoneInSlack: a controller that observed strictly worse
// latency never ends with a larger batch cap than one that observed
// better latency, all else equal.
func TestCapMonotoneInSlack(t *testing.T) {
	ratios := []float64{0.3, 0.8, 1.0, 1.3, 2.0, 4.0}
	prevCap, prevBudget := -1, -1
	for i, v := range ratios {
		c := newTest(Config{})
		now := units.Seconds(0)
		for k := 0; k < 10; k++ {
			step(c, &now, v, 0.5)
		}
		if i > 0 && (c.DecodeCap() > prevCap || c.PrefillTokenBudget() > prevBudget) {
			t.Fatalf("violation %v ended with caps %d/%d above the better-latency run's %d/%d",
				v, c.DecodeCap(), c.PrefillTokenBudget(), prevCap, prevBudget)
		}
		prevCap, prevBudget = c.DecodeCap(), c.PrefillTokenBudget()
	}
}

// TestHysteresisSquareWave: a load alternating between violation and
// slack every window cannot make the caps oscillate every window — the
// post-decrease cooldown blocks the immediate re-increase, so direction
// flips are at most one per (1 + CooldownWindows) windows.
func TestHysteresisSquareWave(t *testing.T) {
	c := newTest(Config{})
	now := units.Seconds(0)
	const windows = 40
	flips, dirChanges := 0, 0
	prev, prevDir := c.DecodeCap(), 0
	for i := 0; i < windows; i++ {
		v := 0.2
		if i%2 == 0 {
			v = 1.5
		}
		cur := step(c, &now, v, 0.5)
		dir := 0
		if cur > prev {
			dir = 1
		} else if cur < prev {
			dir = -1
		}
		if dir != 0 {
			flips++
			if prevDir != 0 && dir != prevDir {
				dirChanges++
			}
			prevDir = dir
		}
		prev = cur
	}
	maxFlips := windows / (1 + c.Config().CooldownWindows)
	if flips > maxFlips {
		t.Fatalf("square wave produced %d cap changes over %d windows (hysteresis bound %d)",
			flips, windows, maxFlips)
	}
	if dirChanges > windows/3 {
		t.Fatalf("caps oscillated: %d direction changes over %d windows", dirChanges, windows)
	}
}

// TestDeadBandHolds: a wave entirely inside the dead band changes
// nothing, ever.
func TestDeadBandHolds(t *testing.T) {
	c := newTest(Config{})
	now := units.Seconds(0)
	for i := 0; i < 20; i++ {
		v := 0.95
		if i%2 == 0 {
			v = 1.05
		}
		if got := step(c, &now, v, 0.5); got != 256 {
			t.Fatalf("in-dead-band load moved the cap to %d", got)
		}
	}
	if m := c.Metrics(); m.Increases != 0 || m.Decreases != 0 {
		t.Fatalf("in-dead-band load took AIMD steps: %+v", m)
	}
}

// TestEmptyWindowHolds: windows with no observations hold the caps even
// under stale violation state.
func TestEmptyWindowHolds(t *testing.T) {
	c := newTest(Config{})
	now := units.Seconds(0)
	step(c, &now, 2.0, 0.5)
	shrunk := c.DecodeCap()
	// Advance many empty windows: no traffic, no movement.
	for i := 0; i < 5; i++ {
		now += c.Config().Window
		c.Tick(now, 0.1)
	}
	if c.DecodeCap() != shrunk {
		t.Fatalf("empty windows moved the cap: %d -> %d", shrunk, c.DecodeCap())
	}
}

func TestObserveCompletionWeighting(t *testing.T) {
	mk := func(tenant string, ttftMs float64) metrics.Request {
		// 1000-token input: NormTTFTMs == ttftMs/1000 per token.
		return metrics.Request{
			ID: "r", Tenant: tenant, InputTokens: 1000, OutputTokens: 1,
			Arrival: 0, PrefillStart: 0,
			FirstToken: units.FromMs(ttftMs), Finish: units.FromMs(ttftMs),
		}
	}
	// A best-effort request at 4x the base target is exactly on its own
	// scaled target, and its weighted ratio is 0.25 — deep in the dead
	// band's slack side, so it must not trigger a decrease.
	c := newTest(Config{})
	now := units.Seconds(0)
	c.Tick(now, 0.5)
	c.ObserveCompletion(now, mk("best-effort", 4*baseSLO.NormTTFTMs*1000), 0.5)
	now += c.Config().Window
	c.Tick(now, 0.5)
	if c.Metrics().Decreases != 0 {
		t.Fatal("on-target best-effort completion triggered a decrease")
	}
	// The same absolute latency from a premium tenant is a 4x violation
	// at full weight: decrease.
	c2 := newTest(Config{})
	now = 0
	c2.Tick(now, 0.5)
	c2.ObserveCompletion(now, mk("premium", 4*baseSLO.NormTTFTMs*1000), 0.5)
	now += c2.Config().Window
	c2.Tick(now, 0.5)
	if c2.Metrics().Decreases != 1 {
		t.Fatal("violating premium completion did not trigger a decrease")
	}
	if c2.Accounting().Completed[Premium] != 1 {
		t.Fatal("completion not accounted to the premium class")
	}
}

func TestAccountingConserves(t *testing.T) {
	c := newTest(Config{})
	c.AddPrefill(Premium, 100)
	c.AddPrefill(BestEffort, 50)
	c.AddDecode(Standard)
	c.AddDecode(Standard)
	c.RecordShed(BestEffort)
	a := c.Accounting()
	if a.TotalPrefillTokens() != 150 || a.TotalDecodeTokens() != 2 {
		t.Fatalf("totals wrong: %+v", a)
	}
	var sum Accounting
	sum.Add(a)
	sum.Add(a)
	if sum.TotalPrefillTokens() != 300 || sum.Shed[BestEffort] != 2 {
		t.Fatalf("Add wrong: %+v", sum)
	}
}

// TestControllerDeterminism: identical observation sequences produce
// identical decision trajectories and identical timeline instants.
func TestControllerDeterminism(t *testing.T) {
	run := func() (Metrics, []timeline.Event) {
		rec := timeline.New(1024)
		c := newTest(Config{})
		c.SetTimeline(rec)
		now := units.Seconds(0)
		for i := 0; i < 30; i++ {
			v := 0.3 + float64(i%7)*0.35
			occ := 0.3 + float64(i%5)*0.12
			step(c, &now, v, occ)
		}
		return c.Metrics(), rec.Events()
	}
	m1, e1 := run()
	m2, e2 := run()
	if m1 != m2 {
		t.Fatalf("metrics diverged: %+v vs %+v", m1, m2)
	}
	if len(e1) != len(e2) {
		t.Fatalf("timeline lengths diverged: %d vs %d", len(e1), len(e2))
	}
	for i := range e1 {
		a, b := e1[i], e2[i]
		if a.Lane != b.Lane || a.Name != b.Name || a.Start != b.Start || len(a.Args) != len(b.Args) {
			t.Fatalf("timeline event %d diverged: %+v vs %+v", i, a, b)
		}
	}
	if m1.Decisions == 0 {
		t.Fatal("no decisions recorded")
	}
}
