// Package resilience provides the router-tier protection state machines
// of the cluster (DESIGN.md §16): per-replica circuit breakers, a hedged
// re-dispatch budget, and per-class token buckets. All three are pure
// virtual-time policy objects — they hold no goroutines, no wall clocks,
// and no randomness, decide from explicit (now, outcome) inputs only, and
// therefore replay bit-identically and compose with the cluster's
// serial ≡ parallel contract: every method is called exclusively from
// outer-simulation event handlers, never from inside a fork/join window.
//
// The package deliberately knows nothing about replicas, requests, or
// QoS classes; internal/cluster owns the wiring (which replica a breaker
// guards, which class a bucket meters) so these state machines stay
// independently property-testable.
package resilience

import (
	"fmt"

	"repro/internal/units"
)

// BreakerState is the circuit-breaker state: Closed admits dispatches,
// Open rejects them until the probe time, HalfOpen has one probe in
// flight whose outcome decides the next state.
type BreakerState int

const (
	// Closed is the healthy state: dispatches flow, consecutive
	// failures are counted.
	Closed BreakerState = iota
	// Open rejects dispatches until the virtual-time probe instant.
	Open
	// HalfOpen has admitted exactly one probe dispatch; ReportSuccess
	// closes the breaker, ReportFailure re-opens it with backoff.
	HalfOpen
)

// String names the state for logs and timeline tags.
func (s BreakerState) String() string {
	switch s {
	case Open:
		return "open"
	case HalfOpen:
		return "half-open"
	}
	return "closed"
}

// BreakerConfig parameterizes one circuit breaker. Zero fields take the
// defaults documented on each.
type BreakerConfig struct {
	// FailureThreshold is how many consecutive dispatch failures close→
	// open the breaker. Default 3.
	FailureThreshold int
	// ProbeAfter is the open→half-open delay before the first probe.
	// Default 500ms.
	ProbeAfter units.Seconds
	// ProbeBackoff multiplies the probe delay per consecutive re-open
	// without an intervening close. Default 2.
	ProbeBackoff float64
	// MaxProbeAfter caps the backed-off probe delay. Default 8s.
	MaxProbeAfter units.Seconds
}

// DefaultBreakerConfig returns the documented defaults.
func DefaultBreakerConfig() BreakerConfig {
	return BreakerConfig{
		FailureThreshold: 3,
		ProbeAfter:       units.FromMs(500),
		ProbeBackoff:     2,
		MaxProbeAfter:    units.Seconds(8),
	}
}

// withDefaults fills zero fields from DefaultBreakerConfig.
func (c BreakerConfig) withDefaults() BreakerConfig {
	d := DefaultBreakerConfig()
	if c.FailureThreshold <= 0 {
		c.FailureThreshold = d.FailureThreshold
	}
	if c.ProbeAfter <= 0 {
		c.ProbeAfter = d.ProbeAfter
	}
	if c.ProbeBackoff < 1 {
		c.ProbeBackoff = d.ProbeBackoff
	}
	if c.MaxProbeAfter <= 0 {
		c.MaxProbeAfter = d.MaxProbeAfter
	}
	return c
}

// Breaker is one per-replica circuit breaker. Not safe for concurrent
// use; the router mutates it only at outer-simulation decision points.
type Breaker struct {
	cfg   BreakerConfig
	state BreakerState
	// fails counts consecutive failures while closed.
	fails int
	// streak counts consecutive opens without an intervening close; it
	// exponentiates the probe delay.
	streak  int
	probeAt units.Seconds

	opens  int
	probes int
	closes int
}

// NewBreaker builds a breaker; zero cfg fields take defaults.
func NewBreaker(cfg BreakerConfig) *Breaker {
	return &Breaker{cfg: cfg.withDefaults()}
}

// State returns the current state.
func (b *Breaker) State() BreakerState { return b.state }

// Opens returns how many closed/half-open → open transitions occurred.
func (b *Breaker) Opens() int { return b.opens }

// Probes returns how many half-open probes were admitted.
func (b *Breaker) Probes() int { return b.probes }

// Closes returns how many open/half-open → closed recoveries occurred.
func (b *Breaker) Closes() int { return b.closes }

// ProbeAt returns the virtual-time instant at which an open breaker will
// admit its next probe (meaningless unless State is Open).
func (b *Breaker) ProbeAt() units.Seconds { return b.probeAt }

// Ready reports whether a dispatch would be admitted at virtual time
// now, without consuming the half-open probe slot. The router's pick
// loop calls it per candidate replica; only the chosen replica's
// breaker sees Allow.
//
//bullet:hotpath
func (b *Breaker) Ready(now units.Seconds) bool {
	switch b.state {
	case Closed:
		return true
	case HalfOpen:
		return false // one probe already in flight
	default:
		return now >= b.probeAt
	}
}

// Allow admits one dispatch at virtual time now: always while closed,
// never while half-open (the probe slot is taken), and exactly once per
// probe instant while open — the open→half-open transition, whose
// cadence is a pure function of the failure history and therefore
// identical serial vs parallel.
//
//bullet:hotpath
func (b *Breaker) Allow(now units.Seconds) bool {
	switch b.state {
	case Closed:
		return true
	case HalfOpen:
		return false
	default:
		if now < b.probeAt {
			return false
		}
		b.state = HalfOpen
		b.probes++
		return true
	}
}

// ReportSuccess records a successful dispatch: it resets the failure
// run and closes the breaker from any non-closed state.
func (b *Breaker) ReportSuccess() {
	b.fails = 0
	if b.state != Closed {
		b.state = Closed
		b.streak = 0
		b.closes++
	}
}

// ReportFailure records a failed (timed-out) dispatch at virtual time
// now: a half-open probe failure re-opens immediately with backoff, a
// closed-state failure opens once the consecutive run reaches the
// threshold.
func (b *Breaker) ReportFailure(now units.Seconds) {
	if b.state == HalfOpen {
		b.open(now)
		return
	}
	if b.state != Closed {
		return // already open; nothing new to learn
	}
	b.fails++
	if b.fails >= b.cfg.FailureThreshold {
		b.open(now)
	}
}

// open transitions to Open and arms the next probe at
// ProbeAfter·ProbeBackoff^streak, capped at MaxProbeAfter.
func (b *Breaker) open(now units.Seconds) {
	b.state = Open
	b.fails = 0
	delay := b.cfg.ProbeAfter
	for i := 0; i < b.streak; i++ {
		delay = units.Scale(delay, b.cfg.ProbeBackoff)
		if delay >= b.cfg.MaxProbeAfter {
			delay = b.cfg.MaxProbeAfter
			break
		}
	}
	b.streak++
	b.probeAt = now + delay
	b.opens++
}

// BucketConfig parameterizes one token bucket. A zero Rate disables
// metering (Allow always admits).
type BucketConfig struct {
	// Rate is the refill rate in tokens per second of virtual time.
	Rate float64
	// Burst is the bucket capacity (and the initial level).
	Burst float64
}

// Bucket is a virtual-time token bucket. Refill is lazy: the level is
// brought forward to the current virtual time on each Allow, so the
// bucket needs no periodic events and conserves exactly — over any
// interval it admits at most Burst + Rate·elapsed tokens (the property
// TestBucketConservation pins).
type Bucket struct {
	cfg    BucketConfig
	level  float64
	last   units.Seconds
	primed bool

	admitted int
	rejected int
}

// NewBucket builds a bucket holding Burst tokens.
func NewBucket(cfg BucketConfig) *Bucket {
	if cfg.Rate < 0 || cfg.Burst < 0 {
		panic(fmt.Sprintf("resilience: invalid bucket config %+v", cfg))
	}
	return &Bucket{cfg: cfg, level: cfg.Burst}
}

// Level returns the current token level as of the last Allow call.
func (b *Bucket) Level() float64 { return b.level }

// Admitted returns how many Allow calls admitted.
func (b *Bucket) Admitted() int { return b.admitted }

// Rejected returns how many Allow calls rejected.
func (b *Bucket) Rejected() int { return b.rejected }

// Allow refills the bucket for the virtual time elapsed since the last
// call, then admits the request iff cost tokens are available. Time must
// be nondecreasing across calls (the simulation clock guarantees it).
//
//bullet:hotpath
func (b *Bucket) Allow(now units.Seconds, cost float64) bool {
	if b.cfg.Rate <= 0 {
		b.admitted++
		return true // unmetered
	}
	if !b.primed {
		b.primed = true
		b.last = now
	}
	if elapsed := now - b.last; elapsed > 0 {
		b.level += b.cfg.Rate * elapsed.Float()
		if b.level > b.cfg.Burst {
			b.level = b.cfg.Burst
		}
		b.last = now
	}
	if cost > b.level {
		b.rejected++
		return false
	}
	b.level -= cost
	b.admitted++
	return true
}

// HedgeConfig parameterizes the hedged re-dispatch policy. Zero fields
// take the defaults documented on each; a zero MaxHedges disables
// hedging entirely.
type HedgeConfig struct {
	// After is the straggler threshold: a dispatch not completed After
	// seconds of virtual time after placement is eligible for a hedge.
	// Default 400ms.
	After units.Seconds
	// Backoff multiplies the wait per additional hedge of the same
	// request. Default 2.
	Backoff float64
	// MaxHedges bounds the extra copies per request. 0 disables hedging.
	MaxHedges int
	// Budget bounds total hedges as a fraction of primary dispatches,
	// so a pathological fleet cannot double every request. Default 0.05.
	Budget float64
	// MinBudget floors the absolute budget so hedging works from the
	// first stragglers of a run. Default 2.
	MinBudget int
}

// DefaultHedgeConfig returns the documented defaults with hedging
// enabled at one copy per straggler.
func DefaultHedgeConfig() HedgeConfig {
	return HedgeConfig{
		After:     units.FromMs(400),
		Backoff:   2,
		MaxHedges: 1,
		Budget:    0.05,
		MinBudget: 2,
	}
}

// withDefaults fills zero fields from DefaultHedgeConfig, leaving
// MaxHedges alone (zero legitimately means "off").
func (c HedgeConfig) withDefaults() HedgeConfig {
	d := DefaultHedgeConfig()
	if c.After <= 0 {
		c.After = d.After
	}
	if c.Backoff < 1 {
		c.Backoff = d.Backoff
	}
	if c.Budget <= 0 {
		c.Budget = d.Budget
	}
	if c.MinBudget <= 0 {
		c.MinBudget = d.MinBudget
	}
	return c
}

// Hedger meters hedged re-dispatches against the budget. Like the
// breaker it is pure bookkeeping; the router owns replica choice and
// copy delivery.
type Hedger struct {
	cfg        HedgeConfig
	dispatches int
	hedges     int
	wins       int
}

// NewHedger builds a hedger; zero cfg fields take defaults.
func NewHedger(cfg HedgeConfig) *Hedger {
	return &Hedger{cfg: cfg.withDefaults()}
}

// Config returns the effective (defaulted) configuration.
func (h *Hedger) Config() HedgeConfig { return h.cfg }

// NoteDispatch records one primary dispatch, growing the budget.
func (h *Hedger) NoteDispatch() { h.dispatches++ }

// Budget returns the hedge allowance as of the dispatches seen so far:
// max(MinBudget, Budget·dispatches). It is nondecreasing in the
// dispatch count (the monotonicity TestHedgeBudgetMonotonic pins).
func (h *Hedger) Budget() int {
	b := int(h.cfg.Budget * float64(h.dispatches))
	if b < h.cfg.MinBudget {
		b = h.cfg.MinBudget
	}
	return b
}

// CanHedge reports whether another hedge fits the budget.
//
//bullet:hotpath
func (h *Hedger) CanHedge() bool {
	if h.cfg.MaxHedges <= 0 {
		return false
	}
	return h.hedges < h.Budget()
}

// NoteHedge records one hedge copy dispatched.
func (h *Hedger) NoteHedge() { h.hedges++ }

// NoteWin records a hedge copy finishing before its primary.
func (h *Hedger) NoteWin() { h.wins++ }

// Hedges returns how many hedge copies were dispatched.
func (h *Hedger) Hedges() int { return h.hedges }

// Wins returns how many hedges beat their primaries.
func (h *Hedger) Wins() int { return h.wins }

// Delay returns the straggler wait before hedge attempt number attempt
// (0-based): After·Backoff^attempt.
func (h *Hedger) Delay(attempt int) units.Seconds {
	d := h.cfg.After
	for i := 0; i < attempt; i++ {
		d = units.Scale(d, h.cfg.Backoff)
	}
	return d
}

// Config bundles the router-tier resilience policies the cluster arms
// per replica set. Zero sub-configs take their defaults; see
// DefaultConfig.
type Config struct {
	// Breaker parameterizes the per-replica circuit breakers.
	Breaker BreakerConfig
	// Hedge parameterizes straggler re-dispatch.
	Hedge HedgeConfig
	// DispatchTimeout bounds how long a dispatch may sit undelivered
	// (black-holed or in transit on a degraded link) before the router
	// counts it as a failure and re-routes. Default 200ms.
	DispatchTimeout units.Seconds
	// BucketRate / BucketBurst parameterize the per-class token buckets
	// in input tokens per second; the cluster scales them per class
	// (premium unmetered first). Zero disables rate limiting.
	BucketRate  float64
	BucketBurst float64
}

// DefaultConfig returns the documented defaults with rate limiting off
// (enable BucketRate for admission-controlled runs).
func DefaultConfig() Config {
	return Config{
		Breaker:         DefaultBreakerConfig(),
		Hedge:           DefaultHedgeConfig(),
		DispatchTimeout: units.FromMs(200),
	}
}

// WithDefaults fills zero fields from DefaultConfig; the cluster calls
// it once at attach time.
func (c Config) WithDefaults() Config {
	c.Breaker = c.Breaker.withDefaults()
	c.Hedge = c.Hedge.withDefaults()
	if c.DispatchTimeout <= 0 {
		c.DispatchTimeout = DefaultConfig().DispatchTimeout
	}
	if c.BucketRate < 0 || c.BucketBurst < 0 {
		panic(fmt.Sprintf("resilience: negative bucket parameters %+v", c))
	}
	return c
}
