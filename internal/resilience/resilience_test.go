package resilience

import (
	"math/rand"
	"reflect"
	"testing"

	"repro/internal/units"
)

func TestBreakerStateString(t *testing.T) {
	for s, want := range map[BreakerState]string{
		Closed: "closed", Open: "open", HalfOpen: "half-open",
	} {
		if got := s.String(); got != want {
			t.Fatalf("%d.String() = %q, want %q", s, got, want)
		}
	}
}

// TestBreakerLifecycle walks the whole state machine: consecutive
// failures trip closed→open, the probe instant admits exactly one
// half-open probe, a failed probe re-opens with backoff, and a
// successful one closes.
func TestBreakerLifecycle(t *testing.T) {
	b := NewBreaker(BreakerConfig{FailureThreshold: 3, ProbeAfter: units.Seconds(1), ProbeBackoff: 2, MaxProbeAfter: units.Seconds(4)})
	if b.State() != Closed || !b.Ready(0) || !b.Allow(0) {
		t.Fatal("fresh breaker must admit")
	}
	b.ReportFailure(0)
	b.ReportFailure(0)
	if b.State() != Closed {
		t.Fatalf("state after 2/3 failures = %v, want closed", b.State())
	}
	b.ReportFailure(0)
	if b.State() != Open || b.Opens() != 1 {
		t.Fatalf("state after 3 failures = %v (opens %d), want open/1", b.State(), b.Opens())
	}
	if b.ProbeAt() != 1 {
		t.Fatalf("probeAt = %v, want 1s (base delay)", b.ProbeAt())
	}
	if b.Ready(0.5) || b.Allow(0.5) {
		t.Fatal("open breaker admitted before the probe instant")
	}
	if !b.Ready(1) {
		t.Fatal("open breaker not ready at the probe instant")
	}
	if !b.Allow(1) {
		t.Fatal("probe not admitted at the probe instant")
	}
	if b.State() != HalfOpen || b.Probes() != 1 {
		t.Fatalf("state after probe = %v (probes %d), want half-open/1", b.State(), b.Probes())
	}
	// Failed probe: re-open with doubled delay.
	b.ReportFailure(1)
	if b.State() != Open || b.Opens() != 2 {
		t.Fatalf("state after failed probe = %v (opens %d), want open/2", b.State(), b.Opens())
	}
	if b.ProbeAt() != 1+2 {
		t.Fatalf("probeAt after one backoff = %v, want 3s", b.ProbeAt())
	}
	// Successful probe: close and reset the backoff streak.
	if !b.Allow(3) {
		t.Fatal("second probe not admitted")
	}
	b.ReportSuccess()
	if b.State() != Closed || b.Closes() != 1 {
		t.Fatalf("state after successful probe = %v (closes %d), want closed/1", b.State(), b.Closes())
	}
	// The streak reset: the next open starts from the base delay again.
	for i := 0; i < 3; i++ {
		b.ReportFailure(10)
	}
	if b.ProbeAt() != 10+1 {
		t.Fatalf("probeAt after close reset = %v, want 11s (base delay)", b.ProbeAt())
	}
}

// TestBreakerProbeBackoffCap pins the probe cadence formula: the delay
// doubles per consecutive re-open and saturates at MaxProbeAfter.
func TestBreakerProbeBackoffCap(t *testing.T) {
	b := NewBreaker(BreakerConfig{FailureThreshold: 1, ProbeAfter: units.Seconds(1), ProbeBackoff: 2, MaxProbeAfter: units.Seconds(4)})
	var delays []units.Seconds
	now := units.Seconds(0)
	for i := 0; i < 5; i++ {
		b.ReportFailure(now) // threshold 1: opens immediately (or re-opens the half-open probe)
		delays = append(delays, b.ProbeAt()-now)
		now = b.ProbeAt()
		if !b.Allow(now) {
			t.Fatalf("probe %d not admitted at its instant", i)
		}
	}
	want := []units.Seconds{1, 2, 4, 4, 4}
	if !reflect.DeepEqual(delays, want) {
		t.Fatalf("probe delays = %v, want %v", delays, want)
	}
}

// TestBreakerDeterministicReplay: the same outcome script yields the
// same transition trace, twice — the cadence is a pure function of the
// failure history.
func TestBreakerDeterministicReplay(t *testing.T) {
	script := func() []string {
		b := NewBreaker(BreakerConfig{})
		rng := rand.New(rand.NewSource(7))
		var trace []string
		now := units.Seconds(0)
		for i := 0; i < 200; i++ {
			now += units.FromMs(float64(50 + rng.Intn(200)))
			if b.Allow(now) || b.State() == HalfOpen {
				switch u := rng.Float64(); {
				case u < 0.4:
					b.ReportSuccess()
				case u < 0.8:
					b.ReportFailure(now)
					// else: the probe stays outstanding this step, so the
					// trace records the half-open dwell.
				}
			}
			trace = append(trace, b.State().String())
		}
		return trace
	}
	a, b := script(), script()
	if !reflect.DeepEqual(a, b) {
		t.Fatal("identical outcome scripts produced different transition traces")
	}
	// The script must actually visit every state for the replay to mean
	// anything.
	seen := map[string]bool{}
	for _, s := range a {
		seen[s] = true
	}
	for _, s := range []string{"closed", "open", "half-open"} {
		if !seen[s] {
			t.Fatalf("replay script never visited %q", s)
		}
	}
}

// TestBreakerReadyIsPure: Ready never consumes the probe slot, so the
// router's pick loop can poll every candidate; only Allow transitions.
func TestBreakerReadyIsPure(t *testing.T) {
	b := NewBreaker(BreakerConfig{FailureThreshold: 1})
	b.ReportFailure(0)
	at := b.ProbeAt()
	for i := 0; i < 5; i++ {
		if !b.Ready(at) {
			t.Fatal("Ready flipped after repeated calls")
		}
	}
	if b.State() != Open || b.Probes() != 0 {
		t.Fatalf("Ready mutated the breaker: state %v, probes %d", b.State(), b.Probes())
	}
	if !b.Allow(at) {
		t.Fatal("probe not admitted")
	}
	if b.Ready(at) || b.Allow(at) {
		t.Fatal("half-open breaker admitted a second probe")
	}
	// Failures while already open are no-ops.
	b2 := NewBreaker(BreakerConfig{FailureThreshold: 1})
	b2.ReportFailure(0)
	before := b2.ProbeAt()
	b2.ReportFailure(0.1)
	if b2.ProbeAt() != before || b2.Opens() != 1 {
		t.Fatal("failure reported to an open breaker changed its probe schedule")
	}
}

func TestBreakerDefaults(t *testing.T) {
	b := NewBreaker(BreakerConfig{})
	d := DefaultBreakerConfig()
	if b.cfg != d {
		t.Fatalf("zero config resolved to %+v, want %+v", b.cfg, d)
	}
	if c := (BreakerConfig{ProbeBackoff: 0.5}).withDefaults(); c.ProbeBackoff != d.ProbeBackoff {
		t.Fatalf("sub-1 backoff kept: %v", c.ProbeBackoff)
	}
}

// TestBucketConservation is the conservation property: over any call
// sequence, a bucket admits at most Burst + Rate·elapsed tokens. Random
// seeded workloads probe the lazy-refill arithmetic.
func TestBucketConservation(t *testing.T) {
	for seed := int64(1); seed <= 20; seed++ {
		rng := rand.New(rand.NewSource(seed))
		cfg := BucketConfig{Rate: 50 + 200*rng.Float64(), Burst: 100 + 400*rng.Float64()}
		b := NewBucket(cfg)
		now := units.Seconds(0)
		start := now
		admitted := 0.0
		for i := 0; i < 2000; i++ {
			now += units.FromMs(20 * rng.Float64())
			cost := 1 + 30*rng.Float64()
			if b.Allow(now, cost) {
				admitted += cost
			}
			if cap := cfg.Burst + cfg.Rate*(now-start).Float(); admitted > cap+1e-6 {
				t.Fatalf("seed %d: admitted %.3f tokens by t=%v, cap %.3f", seed, admitted, now, cap)
			}
		}
		if b.Admitted() == 0 || b.Rejected() == 0 {
			t.Fatalf("seed %d: degenerate run (admitted %d, rejected %d)", seed, b.Admitted(), b.Rejected())
		}
	}
}

func TestBucketRefillAndClamp(t *testing.T) {
	b := NewBucket(BucketConfig{Rate: 10, Burst: 20})
	if !b.Allow(0, 20) {
		t.Fatal("full bucket rejected a burst-sized request")
	}
	if b.Allow(0, 1) {
		t.Fatal("empty bucket admitted")
	}
	if b.Allow(0.5, 6) {
		t.Fatal("admitted 6 tokens after refilling only 5")
	}
	if !b.Allow(1, 10) {
		t.Fatal("rejected 10 tokens after a full second of refill")
	}
	// Idle refill clamps at Burst.
	if !b.Allow(100, 20) || b.Allow(100, 1) {
		t.Fatal("idle refill exceeded the burst capacity")
	}
	if b.Level() != 0 {
		t.Fatalf("level = %v, want 0", b.Level())
	}
}

func TestBucketUnmetered(t *testing.T) {
	b := NewBucket(BucketConfig{})
	for i := 0; i < 10; i++ {
		if !b.Allow(0, 1e9) {
			t.Fatal("unmetered bucket rejected")
		}
	}
	if b.Admitted() != 10 || b.Rejected() != 0 {
		t.Fatalf("unmetered accounting admitted %d rejected %d", b.Admitted(), b.Rejected())
	}
}

func TestBucketNegativeConfigPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("negative bucket config accepted")
		}
	}()
	NewBucket(BucketConfig{Rate: -1})
}

// TestHedgeBudgetMonotonic is the monotonicity property: the budget
// never shrinks as dispatches accumulate, so a hedge admitted once
// stays within budget forever.
func TestHedgeBudgetMonotonic(t *testing.T) {
	h := NewHedger(HedgeConfig{MaxHedges: 1, Budget: 0.1, MinBudget: 2})
	prev := h.Budget()
	if prev != 2 {
		t.Fatalf("initial budget = %d, want the MinBudget floor", prev)
	}
	for i := 0; i < 500; i++ {
		h.NoteDispatch()
		b := h.Budget()
		if b < prev {
			t.Fatalf("budget shrank %d → %d at dispatch %d", prev, b, i)
		}
		prev = b
	}
	if prev != 50 {
		t.Fatalf("budget after 500 dispatches = %d, want 50 (10%%)", prev)
	}
}

func TestHedgerBudgetEnforced(t *testing.T) {
	h := NewHedger(HedgeConfig{MaxHedges: 1, Budget: 0.5, MinBudget: 1})
	h.NoteDispatch()
	if !h.CanHedge() {
		t.Fatal("first hedge rejected despite MinBudget")
	}
	h.NoteHedge()
	if h.CanHedge() {
		t.Fatal("hedge admitted past the budget")
	}
	h.NoteDispatch() // budget grows to max(1, 0.5*2) = 1 — still spent
	if h.CanHedge() {
		t.Fatal("budget regrew too early")
	}
	h.NoteDispatch()
	h.NoteDispatch()
	if !h.CanHedge() {
		t.Fatal("budget did not grow with dispatches")
	}
	h.NoteWin()
	if h.Hedges() != 1 || h.Wins() != 1 {
		t.Fatalf("hedges %d wins %d, want 1/1", h.Hedges(), h.Wins())
	}
}

func TestHedgerDisabled(t *testing.T) {
	h := NewHedger(HedgeConfig{MaxHedges: 0})
	for i := 0; i < 10; i++ {
		h.NoteDispatch()
	}
	if h.CanHedge() {
		t.Fatal("MaxHedges 0 must disable hedging")
	}
}

func TestHedgerDelay(t *testing.T) {
	h := NewHedger(HedgeConfig{After: units.FromMs(100), Backoff: 2, MaxHedges: 3})
	for attempt, want := range []units.Seconds{units.FromMs(100), units.FromMs(200), units.FromMs(400)} {
		if got := h.Delay(attempt); got != want {
			t.Fatalf("Delay(%d) = %v, want %v", attempt, got, want)
		}
	}
	if h.Config().After != units.FromMs(100) {
		t.Fatalf("Config() lost the override: %+v", h.Config())
	}
}

func TestConfigWithDefaults(t *testing.T) {
	c := (Config{}).WithDefaults()
	if c.DispatchTimeout != units.FromMs(200) {
		t.Fatalf("DispatchTimeout default = %v", c.DispatchTimeout)
	}
	if c.Breaker != DefaultBreakerConfig() {
		t.Fatalf("Breaker default = %+v", c.Breaker)
	}
	// MaxHedges legitimately stays zero (off); the rest defaults.
	if c.Hedge.MaxHedges != 0 || c.Hedge.After != DefaultHedgeConfig().After {
		t.Fatalf("Hedge default = %+v", c.Hedge)
	}
	if c.BucketRate != 0 || c.BucketBurst != 0 {
		t.Fatalf("bucket defaults = %v/%v, want off", c.BucketRate, c.BucketBurst)
	}
	if d := DefaultConfig(); d.Hedge.MaxHedges != 1 {
		t.Fatalf("DefaultConfig hedging = %+v, want one copy armed", d.Hedge)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("negative bucket rate accepted")
		}
	}()
	(Config{BucketRate: -1}).WithDefaults()
}
