// Package resource implements Bullet's computational resource manager
// (§3.4): fine-grained SM partitioning via pre-configured SM-masked
// streams, with instant (map-lookup) re-configuration.
//
// Rather than reprogramming stream masks on every scheduling decision, a
// table of streams is built up-front — one per (phase, SM count) pair at a
// quantization step (the paper profiles at a step of 6 SMs; the hardware
// mask granularity is 2). Switching a phase's allocation is then just
// launching on a different pre-built stream, which is what makes
// layer-wise re-configuration effectively free (Table 3).
//
// Prefill masks grow from the low SM indices and decode masks from the
// high ones, so any prefill/decode pair whose counts sum to at most the
// device size is strictly disjoint, while larger sums overlap in the
// middle — the intentional, non-strictly-isolated sharing of §3.4.2.
package resource

import (
	"fmt"
	"sort"

	"repro/internal/gpusim"
	"repro/internal/smmask"
)

// Phase selects which side of the device a stream's mask grows from.
type Phase int

const (
	// Prefill masks occupy SMs [0, n).
	Prefill Phase = iota
	// Decode masks occupy SMs [M-n, M).
	Decode
)

func (p Phase) String() string {
	if p == Prefill {
		return "prefill"
	}
	return "decode"
}

// Manager owns the pre-configured stream table for one GPU.
type Manager struct {
	gpu     *gpusim.GPU
	step    int
	numSMs  int
	levels  []int
	streams map[Phase]map[int]*gpusim.Stream

	reconfigs int
	current   map[Phase]int
}

// NewManager builds the stream table. step is the SM allocation
// granularity; it must be positive, a multiple of the hardware granularity
// (2), and divide into useful levels of the device size. The device SM
// count itself is always a level even when step does not divide it.
func NewManager(gpu *gpusim.GPU, step int) *Manager {
	if step <= 0 || step%smmask.Granularity != 0 {
		panic(fmt.Sprintf("resource: invalid SM step %d", step))
	}
	m := &Manager{
		gpu:     gpu,
		step:    step,
		numSMs:  gpu.Spec.NumSMs,
		streams: map[Phase]map[int]*gpusim.Stream{Prefill: {}, Decode: {}},
		current: map[Phase]int{Prefill: gpu.Spec.NumSMs, Decode: gpu.Spec.NumSMs},
	}
	for n := step; n < m.numSMs; n += step {
		m.levels = append(m.levels, n)
	}
	m.levels = append(m.levels, m.numSMs)
	for _, n := range m.levels {
		m.streams[Prefill][n] = gpu.NewStream(smmask.Range(0, n))
		m.streams[Decode][n] = gpu.NewStream(smmask.Range(m.numSMs-n, m.numSMs))
	}
	return m
}

// NumSMs returns the device SM count.
func (m *Manager) NumSMs() int { return m.numSMs }

// Step returns the allocation granularity.
func (m *Manager) Step() int { return m.step }

// Levels returns the available SM counts in ascending order.
func (m *Manager) Levels() []int { return append([]int(nil), m.levels...) }

// Quantize rounds an SM request to the nearest available level (at least
// the smallest level, at most the device size).
func (m *Manager) Quantize(sms int) int {
	if sms <= m.levels[0] {
		return m.levels[0]
	}
	if sms >= m.numSMs {
		return m.numSMs
	}
	i := sort.SearchInts(m.levels, sms)
	// m.levels[i] >= sms; pick the closer of levels[i-1] and levels[i].
	if i == 0 {
		return m.levels[0]
	}
	lo, hi := m.levels[i-1], m.levels[i]
	if sms-lo <= hi-sms {
		return lo
	}
	return hi
}

// Stream returns the pre-configured stream for a phase at a quantized SM
// count, recording the switch when the allocation changed. This is the
// "instant re-configuration" path: no masks are rebuilt.
func (m *Manager) Stream(p Phase, sms int) *gpusim.Stream {
	q := m.Quantize(sms)
	st, ok := m.streams[p][q]
	if !ok {
		panic(fmt.Sprintf("resource: no %v stream for %d SMs", p, q))
	}
	if m.current[p] != q {
		m.current[p] = q
		m.reconfigs++
	}
	return st
}

// Current returns the last SM count handed out for a phase.
func (m *Manager) Current(p Phase) int { return m.current[p] }

// Reconfigurations returns how many allocation switches occurred.
func (m *Manager) Reconfigurations() int { return m.reconfigs }

// Overlap returns the number of SMs shared between the current prefill
// and decode allocations.
func (m *Manager) Overlap() int {
	p, d := m.current[Prefill], m.current[Decode]
	over := p + d - m.numSMs
	if over < 0 {
		return 0
	}
	return over
}
