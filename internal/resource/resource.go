// Package resource implements Bullet's computational resource manager
// (§3.4): fine-grained SM partitioning via pre-configured SM-masked
// streams, with instant (map-lookup) re-configuration.
//
// Rather than reprogramming stream masks on every scheduling decision, a
// table of streams is built up-front — one per (phase, SM count) pair at a
// quantization step (the paper profiles at a step of 6 SMs; the hardware
// mask granularity is 2). Switching a phase's allocation is then just
// launching on a different pre-built stream, which is what makes
// layer-wise re-configuration effectively free (Table 3).
//
// Prefill masks grow from the low SM indices and decode masks from the
// high ones, so any prefill/decode pair whose counts sum to at most the
// device size is strictly disjoint, while larger sums overlap in the
// middle — the intentional, non-strictly-isolated sharing of §3.4.2.
package resource

import (
	"fmt"

	"repro/internal/gpusim"
	"repro/internal/smmask"
	"repro/internal/timeline"
)

// Phase selects which side of the device a stream's mask grows from.
type Phase int

const (
	// Prefill masks occupy SMs [0, n).
	Prefill Phase = iota
	// Decode masks occupy SMs [M-n, M).
	Decode
)

func (p Phase) String() string {
	if p == Prefill {
		return "prefill"
	}
	return "decode"
}

// Manager owns the pre-configured stream table for one GPU.
type Manager struct {
	gpu     *gpusim.GPU
	step    int
	numSMs  int         // device SM count
	avail   int         // healthy SM count the current table draws from
	healthy smmask.Mask // healthy-SM set the current table draws from
	levels  []int
	streams map[Phase]map[int]*gpusim.Stream

	reconfigs int
	rebuilds  int
	current   map[Phase]int

	// idx is build's healthy-index scratch, resliced to [:0] per
	// rebuild: fault/recovery transitions re-derive the table on the hot
	// resilience path and must not allocate.
	idx []int

	// TL, when non-nil, records repartition/rebuild instants on the
	// "resource" lane.
	TL *timeline.Recorder
}

// NewManager builds the stream table. step is the SM allocation
// granularity; it must be positive, a multiple of the hardware granularity
// (2), and divide into useful levels of the device size. The device SM
// count itself is always a level even when step does not divide it.
func NewManager(gpu *gpusim.GPU, step int) *Manager {
	if step <= 0 || step%smmask.Granularity != 0 {
		panic(fmt.Sprintf("resource: invalid SM step %d", step))
	}
	m := &Manager{
		gpu:     gpu,
		step:    step,
		numSMs:  gpu.Spec.NumSMs,
		streams: map[Phase]map[int]*gpusim.Stream{Prefill: {}, Decode: {}},
		current: map[Phase]int{Prefill: gpu.Spec.NumSMs, Decode: gpu.Spec.NumSMs},
	}
	m.build(smmask.Full(m.numSMs))
	return m
}

// Rebuild re-derives the whole stream table from a changed healthy-SM
// set (SM faults or recoveries): levels shrink to the healthy count,
// prefill masks grow from the lowest healthy indices, decode masks from
// the highest, and existing streams are retargeted in place via SetMask
// so kernels already running keep the masks they launched with
// (libsmctrl semantics). The paper's pre-configured masked-stream table
// (§3.4) is exactly the mechanism that makes routing around dead SMs an
// O(levels) re-derivation instead of a serving pause.
//
//bullet:hotpath
func (m *Manager) Rebuild(healthy smmask.Mask) {
	m.build(healthy)
	m.rebuilds++
	if m.TL != nil {
		m.TL.Instant("resource", "rebuild", m.gpu.Sim().Now(),
			timeline.I("healthySMs", healthy.Count()))
	}
}

// build derives levels, masks and streams from a healthy-SM set. The
// stream table is mutated in place: levels and the index scratch reuse
// their buffers, and existing stream objects are retargeted via SetMask.
// Entries for levels dropped by a shrink stay in the map (their streams
// stay registered on the GPU so in-flight kernels finish) but are
// unreachable through Stream, whose lookups go through Quantize and the
// current level list.
//
//bullet:hotpath
func (m *Manager) build(healthy smmask.Mask) {
	avail := healthy.Count()
	if avail <= 0 {
		panic("resource: rebuild with no healthy SMs")
	}
	m.idx = healthy.AppendIndices(m.idx[:0])
	levels := m.levels[:0]
	for n := m.step; n < avail; n += m.step {
		levels = append(levels, n)
	}
	levels = append(levels, avail)

	for _, n := range levels {
		m.setStream(Prefill, n, maskOf(m.idx[:n]))
		m.setStream(Decode, n, maskOf(m.idx[avail-n:]))
	}
	m.healthy = healthy
	m.avail = avail
	m.levels = levels
}

// setStream reuses the stream object for a (phase, level) pair when one
// exists (retargeting its mask) and creates it otherwise.
//
//bullet:hotpath
func (m *Manager) setStream(p Phase, n int, mask smmask.Mask) {
	if st, ok := m.streams[p][n]; ok {
		st.SetMask(mask)
		return
	}
	//lint:ignore hotalloc the stream set is bounded by the level table; steady-state rebuilds retarget in place
	m.streams[p][n] = m.gpu.NewStream(mask)
}

// maskOf builds a mask from explicit SM indices.
func maskOf(idx []int) smmask.Mask {
	var m smmask.Mask
	for _, i := range idx {
		m.Set(i)
	}
	return m
}

// NumSMs returns the device SM count.
func (m *Manager) NumSMs() int { return m.numSMs }

// Avail returns the healthy SM count the current table draws from.
func (m *Manager) Avail() int { return m.avail }

// Healthy returns the healthy-SM set the current table draws from.
func (m *Manager) Healthy() smmask.Mask { return m.healthy }

// Rebuilds returns how many times the table was re-derived after health
// changes.
func (m *Manager) Rebuilds() int { return m.rebuilds }

// Step returns the allocation granularity.
func (m *Manager) Step() int { return m.step }

// Levels returns the available SM counts in ascending order.
func (m *Manager) Levels() []int { return append([]int(nil), m.levels...) }

// Quantize rounds an SM request to the nearest available level (at least
// the smallest level, at most the largest — the healthy SM count after a
// rebuild, the device size otherwise).
func (m *Manager) Quantize(sms int) int {
	if sms <= m.levels[0] {
		return m.levels[0]
	}
	if top := m.levels[len(m.levels)-1]; sms >= top {
		return top
	}
	// Open-coded sort.SearchInts: the closure it takes would allocate on
	// every per-cycle stream lookup.
	lo, hi0 := 0, len(m.levels)
	for lo < hi0 {
		mid := int(uint(lo+hi0) >> 1)
		if m.levels[mid] < sms {
			lo = mid + 1
		} else {
			hi0 = mid
		}
	}
	i := lo
	// m.levels[i] >= sms; pick the closer of levels[i-1] and levels[i].
	if i == 0 {
		return m.levels[0]
	}
	lo, hi := m.levels[i-1], m.levels[i]
	if sms-lo <= hi-sms {
		return lo
	}
	return hi
}

// Stream returns the pre-configured stream for a phase at a quantized SM
// count, recording the switch when the allocation changed. This is the
// "instant re-configuration" path: no masks are rebuilt.
//
//bullet:hotpath
func (m *Manager) Stream(p Phase, sms int) *gpusim.Stream {
	q := m.Quantize(sms)
	st, ok := m.streams[p][q]
	if !ok {
		panic(fmt.Sprintf("resource: no %v stream for %d SMs", p, q))
	}
	if m.current[p] != q {
		m.current[p] = q
		m.reconfigs++
		if m.TL != nil {
			m.TL.Instant("resource", "repartition", m.gpu.Sim().Now(),
				timeline.S("phase", p.String()),
				timeline.I("sms", q))
		}
	}
	return st
}

// Current returns the last SM count handed out for a phase.
func (m *Manager) Current(p Phase) int { return m.current[p] }

// Reconfigurations returns how many allocation switches occurred.
func (m *Manager) Reconfigurations() int { return m.reconfigs }

// Overlap returns the number of SMs shared between the current prefill
// and decode allocations, out of the healthy budget they draw from.
func (m *Manager) Overlap() int {
	p, d := m.current[Prefill], m.current[Decode]
	over := p + d - m.avail
	if over < 0 {
		return 0
	}
	return over
}
