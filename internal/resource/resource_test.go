package resource

import (
	"testing"
	"testing/quick"

	"repro/internal/gpusim"
	"repro/internal/sim"
	"repro/internal/smmask"
)

func newManager(t testing.TB, step int) *Manager {
	t.Helper()
	s := sim.New()
	g := gpusim.New(s, gpusim.A100())
	return NewManager(g, step)
}

func TestLevels(t *testing.T) {
	m := newManager(t, 6)
	levels := m.Levels()
	if levels[0] != 6 {
		t.Fatalf("first level = %d, want 6", levels[0])
	}
	if levels[len(levels)-1] != 108 {
		t.Fatalf("last level = %d, want 108", levels[len(levels)-1])
	}
	if len(levels) != 18 {
		t.Fatalf("levels = %d, want 18", len(levels))
	}
}

func TestLevelsNonDividingStep(t *testing.T) {
	m := newManager(t, 20)
	levels := m.Levels()
	// 20,40,60,80,100,108.
	if len(levels) != 6 || levels[len(levels)-1] != 108 {
		t.Fatalf("levels = %v", levels)
	}
}

func TestQuantize(t *testing.T) {
	m := newManager(t, 6)
	cases := []struct{ in, want int }{
		{0, 6}, {1, 6}, {6, 6}, {8, 6}, {9, 6}, {10, 12}, {107, 108},
		{108, 108}, {200, 108}, {54, 54}, {55, 54}, {57, 54},
	}
	for _, c := range cases {
		if got := m.Quantize(c.in); got != c.want {
			t.Errorf("Quantize(%d) = %d, want %d", c.in, got, c.want)
		}
	}
}

func TestStreamMasks(t *testing.T) {
	m := newManager(t, 6)
	p := m.Stream(Prefill, 60)
	d := m.Stream(Decode, 48)
	if p.Mask().Count() != 60 || d.Mask().Count() != 48 {
		t.Fatalf("mask counts: %d, %d", p.Mask().Count(), d.Mask().Count())
	}
	// 60 + 48 = 108: strictly disjoint.
	if p.Mask().Overlaps(d.Mask()) {
		t.Fatal("complementary masks overlap")
	}
	if m.Overlap() != 0 {
		t.Fatalf("Overlap = %d, want 0", m.Overlap())
	}
	// 108 + 24 overlap by 24.
	p = m.Stream(Prefill, 108)
	d = m.Stream(Decode, 24)
	if got := p.Mask().Intersect(d.Mask()).Count(); got != 24 {
		t.Fatalf("intersection = %d, want 24", got)
	}
	if m.Overlap() != 24 {
		t.Fatalf("Overlap = %d, want 24", m.Overlap())
	}
}

func TestStreamIdentityStable(t *testing.T) {
	m := newManager(t, 6)
	a := m.Stream(Prefill, 60)
	b := m.Stream(Prefill, 60)
	if a != b {
		t.Fatal("same request returned different streams (not pre-configured)")
	}
}

func TestReconfigurationCount(t *testing.T) {
	m := newManager(t, 6)
	m.Stream(Prefill, 60)
	m.Stream(Prefill, 60) // no change
	m.Stream(Prefill, 66)
	m.Stream(Decode, 42)
	if got := m.Reconfigurations(); got != 3 {
		t.Fatalf("reconfigs = %d, want 3", got)
	}
	if m.Current(Prefill) != 66 || m.Current(Decode) != 42 {
		t.Fatalf("current = %d/%d", m.Current(Prefill), m.Current(Decode))
	}
}

func TestInvalidStepPanics(t *testing.T) {
	s := sim.New()
	g := gpusim.New(s, gpusim.A100())
	for _, step := range []int{0, -2, 3} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("step %d accepted", step)
				}
			}()
			NewManager(g, step)
		}()
	}
}

// Property: Quantize always returns a valid level and is idempotent.
func TestPropertyQuantize(t *testing.T) {
	m := newManager(t, 6)
	valid := map[int]bool{}
	for _, l := range m.Levels() {
		valid[l] = true
	}
	f := func(sms int16) bool {
		q := m.Quantize(int(sms))
		return valid[q] && m.Quantize(q) == q
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: prefill and decode streams with counts summing to ≤ NumSMs
// never overlap; sums above NumSMs overlap by exactly the excess.
func TestPropertyDisjointness(t *testing.T) {
	m := newManager(t, 6)
	levels := m.Levels()
	for _, p := range levels {
		for _, d := range levels {
			ps := m.Stream(Prefill, p)
			ds := m.Stream(Decode, d)
			inter := ps.Mask().Intersect(ds.Mask()).Count()
			wantOver := p + d - 108
			if wantOver < 0 {
				wantOver = 0
			}
			if inter != wantOver {
				t.Fatalf("p=%d d=%d overlap=%d want %d", p, d, inter, wantOver)
			}
		}
	}
}

// BenchmarkReconfigure measures the Table 3 "Resource Re-config" path: the
// cost of switching a phase to a different pre-configured SM partition.
func BenchmarkReconfigure(b *testing.B) {
	m := newManager(b, 6)
	levels := m.Levels()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = m.Stream(Prefill, levels[i%len(levels)])
	}
}

func TestRebuildShrinksLevels(t *testing.T) {
	m := newManager(t, 6)
	// Kill SMs [100,108): 100 healthy SMs remain.
	healthy := smmask.Range(0, 100)
	m.Rebuild(healthy)
	if m.Avail() != 100 {
		t.Fatalf("Avail = %d, want 100", m.Avail())
	}
	if m.Rebuilds() != 1 {
		t.Fatalf("Rebuilds = %d, want 1", m.Rebuilds())
	}
	levels := m.Levels()
	if levels[len(levels)-1] != 100 {
		t.Fatalf("top level = %d, want 100", levels[len(levels)-1])
	}
	if m.Quantize(108) != 100 {
		t.Fatalf("Quantize(108) = %d, want clamp to 100", m.Quantize(108))
	}
	// No stream mask may touch a dead SM.
	dead := smmask.Range(100, 108)
	for _, n := range levels {
		for _, p := range []Phase{Prefill, Decode} {
			if st := m.Stream(p, n); st.Mask().Overlaps(dead) {
				t.Fatalf("%v stream at %d SMs overlaps dead range", p, n)
			}
		}
	}
}

func TestRebuildHolePlacement(t *testing.T) {
	m := newManager(t, 6)
	// Kill SMs [10,20) in the middle: prefill masks must grow from the
	// lowest healthy indices and decode from the highest, skipping the
	// hole.
	healthy := smmask.Range(0, 10).Union(smmask.Range(20, 108))
	m.Rebuild(healthy)
	if m.Avail() != 98 {
		t.Fatalf("Avail = %d, want 98", m.Avail())
	}
	p := m.Stream(Prefill, 12)
	want := smmask.Range(0, 10).Union(smmask.Range(20, 22))
	if p.Mask() != want {
		t.Fatalf("prefill mask %v, want %v", p.Mask(), want)
	}
	d := m.Stream(Decode, 12)
	if d.Mask() != smmask.Range(96, 108) {
		t.Fatalf("decode mask %v, want SMs [96,108)", d.Mask())
	}
	// Disjointness at the healthy budget still holds.
	if p.Mask().Overlaps(d.Mask()) {
		t.Fatal("prefill and decode masks overlap below the healthy budget")
	}
}

func TestRebuildReusesStreams(t *testing.T) {
	m := newManager(t, 6)
	before := m.Stream(Prefill, 60)
	m.Rebuild(smmask.Range(0, 100))
	after := m.Stream(Prefill, 60)
	if before != after {
		t.Fatal("rebuild replaced a reusable stream object")
	}
	if before.Mask() != smmask.Range(0, 60) {
		t.Fatalf("reused stream mask %v, want SMs [0,60)", before.Mask())
	}
}

func TestRebuildRecovery(t *testing.T) {
	m := newManager(t, 6)
	m.Rebuild(smmask.Range(0, 54))
	m.Rebuild(smmask.Full(108))
	if m.Avail() != 108 || m.Quantize(108) != 108 {
		t.Fatalf("recovery: Avail=%d Quantize(108)=%d", m.Avail(), m.Quantize(108))
	}
	if m.Rebuilds() != 2 {
		t.Fatalf("Rebuilds = %d, want 2", m.Rebuilds())
	}
	if got := m.Stream(Decode, 48).Mask(); got != smmask.Range(60, 108) {
		t.Fatalf("decode mask after recovery %v, want SMs [60,108)", got)
	}
}

func TestRebuildEmptyPanics(t *testing.T) {
	m := newManager(t, 6)
	defer func() {
		if recover() == nil {
			t.Fatal("rebuild with no healthy SMs did not panic")
		}
	}()
	m.Rebuild(smmask.Mask{})
}
