// Package sched implements Bullet's SLO-aware task scheduler (§3.3,
// Algorithm 1): at every layer-wise scheduling cycle it tracks prefill and
// decode progress, predicts TTFT and TPOT with the performance estimator,
// and searches SM partitions that maximize throughput subject to the
// latency targets — shrinking the decode allocation when there is slack,
// balancing when both targets are at risk, shrinking prefill when only
// TPOT is violated, and temporarily pausing decode when TTFT cannot be
// rescued any other way.
package sched

import (
	"fmt"
	"math"
	"sort"

	"repro/internal/estimator"
	"repro/internal/metrics"
	"repro/internal/sim"
	"repro/internal/units"
)

// WaitingReq is a queued request not yet in prefill.
type WaitingReq struct {
	Arrival     sim.Time
	InputTokens int
	// Weight is the QoS fairness weight in (0, 1]: 1 for premium (and
	// for every request when QoS is off — the zero value reads as 1), a
	// class's reciprocal SLO scale otherwise. A lower weight stretches
	// the deadline and discounts the request's predicted-TTFT
	// contribution by exactly the slack its class's SLO grants.
	Weight float64
}

// weight returns the effective fairness weight (zero value reads as 1,
// so QoS-off paths are bit-identical: dividing or scaling by 1.0 is
// exact in IEEE arithmetic).
func (w WaitingReq) weight() float64 {
	if w.Weight == 0 {
		return 1
	}
	return w.Weight
}

// Deadline returns the latest acceptable first-token time under the SLO,
// with the TTFT budget stretched by the reciprocal fairness weight —
// Algorithm 1's deadline ordering becomes weighted fairness across
// tenant classes.
func (w WaitingReq) Deadline(slo metrics.SLO) sim.Time {
	return w.Arrival + units.Over(units.FromMs(slo.NormTTFTMs*float64(w.InputTokens)), w.weight())
}

// PrefillStatus is the running prefill batch's progress (P_k).
type PrefillStatus struct {
	Active      bool
	Tokens      int // np: total tokens in the batch
	LayersDone  int // l_k
	StartTime   sim.Time
	Arrivals    []sim.Time // per batched request
	InputTokens []int      // per batched request
	// Weights are the per-request QoS fairness weights (nil, or a zero
	// entry, reads as 1 — see WaitingReq.Weight).
	Weights []float64
}

// DecodeStatus is the decode batch's progress (D_k).
type DecodeStatus struct {
	Batch     int          // n_d
	AvgCtx    units.Tokens // cl
	Elapsed   []units.Seconds
	Generated []int
}

// State is the system snapshot S_k read from the shared metadata buffer.
type State struct {
	Now        sim.Time
	Prefill    PrefillStatus
	Waiting    []WaitingReq
	Decode     DecodeStatus
	PrefillSMs int // u_k
	DecodeSMs  int // v_k
}

// Decision is the scheduler's output R_{k+1}.
type Decision struct {
	PrefillSMs  int
	DecodeSMs   int
	PauseDecode bool
	// Branch records which Algorithm 1 arm produced the decision, for
	// tracing and tests: "idle", "prefill-only", "decode-only",
	// "reduce-decode", "balance", "reduce-prefill", "pause-decode",
	// "handover".
	Branch string
	// PredNormTTFT and PredTPOTMs are the P90 predictions the decision
	// was based on.
	PredNormTTFT float64
	PredTPOTMs   float64
}

// Config shapes the search space.
type Config struct {
	TotalLayers   int
	LayerGroup    int // layers launched per prefill scheduling cycle
	NumSMs        int
	Levels        []int // available SM counts, ascending
	MinPrefillSMs int
	MinDecodeSMs  int
}

// Scheduler evaluates Algorithm 1 against an estimator and SLO pair.
type Scheduler struct {
	est *estimator.Estimator
	slo metrics.SLO
	cfg Config

	// Prediction scratch buffers, resliced to [:0] each call: Decide
	// evaluates the predictors once per candidate SM level, so they must
	// not allocate per call.
	norms []float64
	tpots []float64
}

// New creates a scheduler. The config must list at least one SM level.
func New(est *estimator.Estimator, slo metrics.SLO, cfg Config) *Scheduler {
	if len(cfg.Levels) == 0 || cfg.TotalLayers <= 0 || cfg.NumSMs <= 0 {
		panic(fmt.Sprintf("sched: invalid config %+v", cfg))
	}
	if cfg.LayerGroup <= 0 {
		cfg.LayerGroup = 1
	}
	if cfg.MinPrefillSMs <= 0 {
		cfg.MinPrefillSMs = cfg.Levels[0]
	}
	if cfg.MinDecodeSMs <= 0 {
		cfg.MinDecodeSMs = cfg.Levels[0]
	}
	if !sort.IntsAreSorted(cfg.Levels) {
		panic("sched: levels not sorted")
	}
	return &Scheduler{est: est, slo: slo, cfg: cfg}
}

// SLO returns the targets the scheduler enforces.
func (s *Scheduler) SLO() metrics.SLO { return s.slo }

// SetCapacity re-targets Algorithm 1 at a changed SM budget — the
// resilience path after SM degradation (or recovery) shrinks or restores
// the healthy set and the resource manager rebuilds its level table.
// Admission minimums are clamped down to the new smallest level so the
// scheduler can still produce feasible splits on a shrunken device.
func (s *Scheduler) SetCapacity(numSMs int, levels []int) {
	if numSMs <= 0 || len(levels) == 0 {
		panic(fmt.Sprintf("sched: invalid capacity %d SMs, levels %v", numSMs, levels))
	}
	if !sort.IntsAreSorted(levels) {
		panic(fmt.Sprintf("sched: capacity levels not sorted: %v", levels))
	}
	s.cfg.NumSMs = numSMs
	s.cfg.Levels = append([]int(nil), levels...)
	if s.cfg.MinPrefillSMs > levels[0] {
		s.cfg.MinPrefillSMs = levels[0]
	}
	if s.cfg.MinDecodeSMs > levels[0] {
		s.cfg.MinDecodeSMs = levels[0]
	}
}

// Capacity returns the SM budget Algorithm 1 currently optimizes over.
func (s *Scheduler) Capacity() int { return s.cfg.NumSMs }

// SortWaiting reorders the pending queue by SLO deadline (earliest first),
// the reordering step of Algorithm 1 line 7. The sort is a hand-rolled
// stable insertion sort: queues are short (admission-bounded), and
// sort.SliceStable's closure would allocate on every scheduling cycle.
//
//bullet:hotpath
func (s *Scheduler) SortWaiting(reqs []WaitingReq) {
	for i := 1; i < len(reqs); i++ {
		r := reqs[i]
		d := r.Deadline(s.slo)
		j := i - 1
		for j >= 0 && d < reqs[j].Deadline(s.slo) {
			reqs[j+1] = reqs[j]
			j--
		}
		reqs[j+1] = r
	}
}

// predictNormTTFT returns the P90 predicted normalized TTFT (ms/token)
// across the running batch and the waiting queue, if prefill runs on pm
// SMs from now on.
//
//bullet:hotpath
func (s *Scheduler) predictNormTTFT(st State, pm int, coloc bool) float64 {
	s.norms = s.norms[:0]
	rem := units.Seconds(0)
	if st.Prefill.Active {
		layersLeft := s.cfg.TotalLayers - st.Prefill.LayersDone
		rem = s.est.PrefillRemainingTime(st.Prefill.Tokens, 0, layersLeft, pm, coloc)
		for i, arr := range st.Prefill.Arrivals {
			ttft := (st.Now - arr) + rem
			wt := 1.0
			if i < len(st.Prefill.Weights) && st.Prefill.Weights[i] != 0 {
				wt = st.Prefill.Weights[i]
			}
			s.norms = append(s.norms, wt*1000*ttft.Float()/float64(st.Prefill.InputTokens[i]))
		}
	}
	// Queued requests wait for the running prefill plus everything ahead
	// of them (Algorithm 1 lines 4-6). Each contribution is scaled by the
	// request's fairness weight, so the P90 the SM split optimizes is the
	// weighted violation Algorithm 1 should balance across classes.
	ahead := rem
	for _, w := range st.Waiting {
		own := s.est.PrefillTotalTime(w.InputTokens, 0, pm, coloc)
		ahead += own
		ttft := (st.Now - w.Arrival) + ahead
		s.norms = append(s.norms, w.weight()*1000*ttft.Float()/float64(w.InputTokens))
	}
	if len(s.norms) == 0 {
		return 0
	}
	return metrics.PercentileInPlace(s.norms, 0.9)
}

// predictTPOTMs returns the P90 predicted TPOT (ms) if decode runs its
// next step on dm SMs, optionally after an extra stall of pause seconds.
//
//bullet:hotpath
func (s *Scheduler) predictTPOTMs(st State, dm int, coloc bool, pause units.Seconds) float64 {
	d := st.Decode
	if d.Batch == 0 {
		return 0
	}
	step := s.est.DecodeStepTime(d.Batch, d.AvgCtx, dm, coloc)
	s.tpots = s.tpots[:0]
	for i := range d.Elapsed {
		gen := d.Generated[i]
		s.tpots = append(s.tpots, 1000*(d.Elapsed[i]+step+pause).Float()/float64(gen+1))
	}
	return metrics.PercentileInPlace(s.tpots, 0.9)
}

// searchLevels returns the index of the first level not below n — an
// open-coded sort.SearchInts, which would otherwise allocate a closure
// per probe.
func searchLevels(lv []int, n int) int {
	lo, hi := 0, len(lv)
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if lv[mid] < n {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}

// complement returns the largest level not exceeding NumSMs-n, clamped to
// the smallest level.
//
//bullet:hotpath
func (s *Scheduler) complement(n int) int {
	rest := s.cfg.NumSMs - n
	lv := s.cfg.Levels
	i := searchLevels(lv, rest+1) - 1
	if i < 0 {
		return lv[0]
	}
	return lv[i]
}

// levelAtLeast returns the smallest level ≥ n (or the largest level).
//
//bullet:hotpath
func (s *Scheduler) levelAtLeast(n int) int {
	lv := s.cfg.Levels
	i := searchLevels(lv, n)
	if i >= len(lv) {
		return lv[len(lv)-1]
	}
	return lv[i]
}

// Decide evaluates Algorithm 1 on a snapshot. The deep depth budget
// carries the allocation check through the predictors into the
// estimator and the model's kernel builders — the full water-filling
// re-rate must not allocate.
//
//bullet:hotpath depth=6
func (s *Scheduler) Decide(st State) Decision {
	M := s.cfg.NumSMs
	// Before the first allocation is published the snapshot carries
	// zeros; treat the phases as owning the full device.
	if st.PrefillSMs <= 0 {
		st.PrefillSMs = M
	}
	if st.DecodeSMs <= 0 {
		st.DecodeSMs = M
	}
	prefillBusy := st.Prefill.Active || len(st.Waiting) > 0
	decodeBusy := st.Decode.Batch > 0

	switch {
	case !prefillBusy && !decodeBusy:
		return Decision{PrefillSMs: M, DecodeSMs: M, Branch: "idle"}
	case !decodeBusy:
		return Decision{PrefillSMs: M, DecodeSMs: M, Branch: "prefill-only",
			PredNormTTFT: s.predictNormTTFT(st, M, false)}
	case !prefillBusy:
		return Decision{PrefillSMs: M, DecodeSMs: M, Branch: "decode-only",
			PredTPOTMs: s.predictTPOTMs(st, M, false, 0)}
	}

	// Handover: when the running prefill will finish within roughly one
	// decode step, let decode deliberately share SMs with the prefill
	// tail (§3.4.2's smooth transition).
	if st.Prefill.Active {
		layersLeft := s.cfg.TotalLayers - st.Prefill.LayersDone
		rem := s.est.PrefillRemainingTime(st.Prefill.Tokens, 0, layersLeft, st.PrefillSMs, true)
		step := s.est.DecodeStepTime(st.Decode.Batch, st.Decode.AvgCtx, st.DecodeSMs, true)
		if rem < step && len(st.Waiting) == 0 {
			return Decision{PrefillSMs: st.PrefillSMs, DecodeSMs: M, Branch: "handover",
				PredNormTTFT: s.predictNormTTFT(st, st.PrefillSMs, true),
				PredTPOTMs:   s.predictTPOTMs(st, M, true, 0)}
		}
	}

	ttft := s.predictNormTTFT(st, st.PrefillSMs, true)
	tpot := s.predictTPOTMs(st, st.DecodeSMs, true, 0)
	ttftOK := ttft <= s.slo.NormTTFTMs
	tpotOK := tpot <= s.slo.TPOTMs

	switch {
	case ttftOK && tpotOK:
		return s.reduceDecodeSM(st, false)
	case !ttftOK && !tpotOK:
		return s.setBalancedSM(st)
	case !tpotOK:
		return s.reducePrefillSM(st)
	default: // only TTFT violated
		return s.reduceDecodeSM(st, true)
	}
}

// reduceDecodeSM shrinks the decode allocation to the smallest level that
// keeps TPOT within target, giving the freed SMs to prefill. When
// allowPause is set (TTFT already violated) and even the minimum decode
// allocation cannot rescue TTFT, decode is paused for one cycle provided
// the pause itself keeps TPOT within target.
func (s *Scheduler) reduceDecodeSM(st State, allowPause bool) Decision {
	M := s.cfg.NumSMs
	bestDM := -1
	var bestTPOT float64
	for _, dm := range s.cfg.Levels {
		if dm < s.cfg.MinDecodeSMs {
			continue
		}
		if t := s.predictTPOTMs(st, dm, true, 0); t <= s.slo.TPOTMs {
			bestDM, bestTPOT = dm, t
			break // levels ascend: first feasible is the smallest
		}
	}
	if bestDM < 0 {
		// No allocation meets TPOT; decode takes everything it can
		// while prefill keeps its minimum.
		pm := s.levelAtLeast(s.cfg.MinPrefillSMs)
		dm := s.complement(pm)
		return Decision{PrefillSMs: pm, DecodeSMs: dm, Branch: "reduce-decode",
			PredNormTTFT: s.predictNormTTFT(st, pm, true),
			PredTPOTMs:   s.predictTPOTMs(st, dm, true, 0)}
	}
	pm := s.complement(bestDM)
	if pm < s.cfg.MinPrefillSMs {
		pm = s.levelAtLeast(s.cfg.MinPrefillSMs)
	}
	ttft := s.predictNormTTFT(st, pm, true)
	if allowPause && ttft > s.slo.NormTTFTMs {
		// Even prefill-favoured splits violate TTFT: consider pausing
		// decode for one layer group and giving prefill the full GPU.
		// When no prefill batch is running yet (pure queueing pressure),
		// size the pause from the head-of-queue request.
		tokens := st.Prefill.Tokens
		if tokens <= 0 && len(st.Waiting) > 0 {
			tokens = st.Waiting[0].InputTokens
		}
		if tokens <= 0 {
			tokens = 1
		}
		pause := units.Scale(s.est.PrefillLayerTime(tokens, 0, M, false),
			float64(s.cfg.LayerGroup))
		if s.predictTPOTMs(st, M, false, pause) <= s.slo.TPOTMs {
			return Decision{PrefillSMs: M, DecodeSMs: s.cfg.MinDecodeSMs,
				PauseDecode: true, Branch: "pause-decode",
				PredNormTTFT: s.predictNormTTFT(st, M, false),
				PredTPOTMs:   s.predictTPOTMs(st, M, false, pause)}
		}
	}
	return Decision{PrefillSMs: pm, DecodeSMs: bestDM, Branch: "reduce-decode",
		PredNormTTFT: ttft, PredTPOTMs: bestTPOT}
}

// setBalancedSM searches complementary splits for the one minimizing the
// worst normalized SLO violation (Algorithm 1 line 13).
func (s *Scheduler) setBalancedSM(st State) Decision {
	bestScore := math.Inf(1)
	var best Decision
	for _, pm := range s.cfg.Levels {
		if pm < s.cfg.MinPrefillSMs {
			continue
		}
		dm := s.complement(pm)
		if dm < s.cfg.MinDecodeSMs || pm+dm > s.cfg.NumSMs {
			continue
		}
		ttft := s.predictNormTTFT(st, pm, true)
		tpot := s.predictTPOTMs(st, dm, true, 0)
		score := math.Max(ttft/s.slo.NormTTFTMs, tpot/s.slo.TPOTMs)
		if score < bestScore {
			bestScore = score
			best = Decision{PrefillSMs: pm, DecodeSMs: dm, Branch: "balance",
				PredNormTTFT: ttft, PredTPOTMs: tpot}
		}
	}
	if math.IsInf(bestScore, 1) {
		M := s.cfg.NumSMs
		half := s.levelAtLeast(M / 2)
		return Decision{PrefillSMs: half, DecodeSMs: s.complement(half), Branch: "balance"}
	}
	return best
}

// reducePrefillSM shrinks prefill until TPOT recovers, keeping prefill at
// least at its minimum.
func (s *Scheduler) reducePrefillSM(st State) Decision {
	// Walk prefill allocations downward; give decode the complement.
	lv := s.cfg.Levels
	for i := len(lv) - 1; i >= 0; i-- {
		pm := lv[i]
		if pm > st.PrefillSMs || pm < s.cfg.MinPrefillSMs {
			continue
		}
		dm := s.complement(pm)
		if dm < s.cfg.MinDecodeSMs {
			continue
		}
		if t := s.predictTPOTMs(st, dm, true, 0); t <= s.slo.TPOTMs {
			return Decision{PrefillSMs: pm, DecodeSMs: dm, Branch: "reduce-prefill",
				PredNormTTFT: s.predictNormTTFT(st, pm, true), PredTPOTMs: t}
		}
	}
	pm := s.levelAtLeast(s.cfg.MinPrefillSMs)
	dm := s.complement(pm)
	return Decision{PrefillSMs: pm, DecodeSMs: dm, Branch: "reduce-prefill",
		PredNormTTFT: s.predictNormTTFT(st, pm, true),
		PredTPOTMs:   s.predictTPOTMs(st, dm, true, 0)}
}
