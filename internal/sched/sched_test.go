package sched

import (
	"testing"
	"testing/quick"

	"repro/internal/estimator"
	"repro/internal/gpusim"
	"repro/internal/metrics"
	"repro/internal/model"
	"repro/internal/sim"
	"repro/internal/units"
)

func testScheduler() *Scheduler {
	est := estimator.New(model.Llama31_8B(), gpusim.A100(), estimator.DefaultParams())
	levels := []int{}
	for n := 6; n <= 108; n += 6 {
		levels = append(levels, n)
	}
	return New(est, metrics.SLOFor("azure-code"), Config{
		TotalLayers: 32,
		LayerGroup:  1,
		NumSMs:      108,
		Levels:      levels,
	})
}

// slackState: small prefill just started, tiny decode batch with healthy
// TPOT history — everything deep within SLO.
func slackState() State {
	return State{
		Now: 10,
		Prefill: PrefillStatus{
			Active: true, Tokens: 2048, LayersDone: 0, StartTime: 10,
			Arrivals: []sim.Time{9.99}, InputTokens: []int{2048},
		},
		Decode: DecodeStatus{
			Batch: 8, AvgCtx: 512,
			Elapsed:   []units.Seconds{0.1, 0.1, 0.1, 0.1, 0.1, 0.1, 0.1, 0.1},
			Generated: []int{10, 10, 10, 10, 10, 10, 10, 10},
		},
		PrefillSMs: 54, DecodeSMs: 54,
	}
}

func TestIdleDecision(t *testing.T) {
	s := testScheduler()
	d := s.Decide(State{Now: 1})
	if d.Branch != "idle" || d.PrefillSMs != 108 || d.DecodeSMs != 108 {
		t.Fatalf("idle decision = %+v", d)
	}
}

func TestPrefillOnlyGetsFullGPU(t *testing.T) {
	s := testScheduler()
	st := slackState()
	st.Decode = DecodeStatus{}
	d := s.Decide(st)
	if d.Branch != "prefill-only" || d.PrefillSMs != 108 {
		t.Fatalf("decision = %+v", d)
	}
}

func TestDecodeOnlyGetsFullGPU(t *testing.T) {
	s := testScheduler()
	st := slackState()
	st.Prefill = PrefillStatus{}
	d := s.Decide(st)
	if d.Branch != "decode-only" || d.DecodeSMs != 108 {
		t.Fatalf("decision = %+v", d)
	}
}

func TestSlackReducesDecodeSM(t *testing.T) {
	s := testScheduler()
	d := s.Decide(slackState())
	if d.Branch != "reduce-decode" {
		t.Fatalf("branch = %s, want reduce-decode (%+v)", d.Branch, d)
	}
	if d.PauseDecode {
		t.Fatal("paused decode despite slack")
	}
	// With this much slack decode should end up at a small allocation
	// and prefill should get most of the GPU.
	if d.DecodeSMs > 54 {
		t.Fatalf("decode SMs = %d, expected a small allocation", d.DecodeSMs)
	}
	if d.PrefillSMs < 54 {
		t.Fatalf("prefill SMs = %d, expected the majority", d.PrefillSMs)
	}
	if d.PredTPOTMs > s.slo.TPOTMs {
		t.Fatalf("chosen decode allocation predicted to violate TPOT: %+v", d)
	}
}

func TestTPOTViolationReducesPrefillSM(t *testing.T) {
	s := testScheduler()
	st := slackState()
	// Decode requests already behind on TPOT: elapsed 0.5s for 1 token
	// (next token would put TPOT near 250ms > 200ms target) while TTFT
	// is fine.
	st.Decode = DecodeStatus{
		Batch: 64, AvgCtx: 2048,
		Elapsed:   repeatF(0.5, 64),
		Generated: repeatI(1, 64),
	}
	d := s.Decide(st)
	if d.Branch != "reduce-prefill" {
		t.Fatalf("branch = %s (%+v)", d.Branch, d)
	}
	if d.DecodeSMs < st.DecodeSMs {
		t.Fatalf("decode SMs shrank on a TPOT violation: %+v", d)
	}
}

func TestTTFTViolationPausesDecodeWhenTPOTHasSlack(t *testing.T) {
	s := testScheduler()
	st := slackState()
	// Request has waited 2s already with a 512-token input: hopeless
	// TTFT (target 1.5 ms/token ⇒ 0.77s budget) unless prefill gets
	// everything.
	st.Prefill.Arrivals = []sim.Time{8.0}
	st.Prefill.InputTokens = []int{512}
	st.Prefill.Tokens = 512
	d := s.Decide(st)
	if d.Branch != "pause-decode" || !d.PauseDecode {
		t.Fatalf("branch = %s, want pause-decode (%+v)", d.Branch, d)
	}
	if d.PrefillSMs != 108 {
		t.Fatalf("paused decision should give prefill the whole GPU: %+v", d)
	}
}

func TestQueuePressureWithoutActivePrefill(t *testing.T) {
	// Regression: decode running, no prefill batch active, but a deep
	// waiting queue with hopeless TTFT. The pause sizing must come from
	// the queue head rather than the (empty) running batch.
	s := testScheduler()
	st := slackState()
	st.Prefill = PrefillStatus{}
	for i := 0; i < 5; i++ {
		st.Waiting = append(st.Waiting, WaitingReq{Arrival: 5, InputTokens: 512})
	}
	d := s.Decide(st) // must not panic
	if d.PrefillSMs <= 0 || d.DecodeSMs <= 0 {
		t.Fatalf("bad decision %+v", d)
	}
}

func TestBothViolatedBalances(t *testing.T) {
	s := testScheduler()
	st := slackState()
	st.Prefill.Arrivals = []sim.Time{7.0}
	st.Prefill.InputTokens = []int{512}
	st.Prefill.Tokens = 512
	st.Decode = DecodeStatus{
		Batch: 64, AvgCtx: 2048,
		Elapsed:   repeatF(0.6, 64),
		Generated: repeatI(1, 64),
	}
	d := s.Decide(st)
	if d.Branch != "balance" {
		t.Fatalf("branch = %s (%+v)", d.Branch, d)
	}
	if d.PrefillSMs+d.DecodeSMs > 108 {
		t.Fatalf("balanced split oversubscribes: %+v", d)
	}
}

func TestHandoverSharesSMs(t *testing.T) {
	s := testScheduler()
	st := slackState()
	st.Prefill.LayersDone = 31 // one layer left: tiny remaining time
	st.Decode = DecodeStatus{
		Batch: 64, AvgCtx: 2048,
		Elapsed:   repeatF(0.1, 64),
		Generated: repeatI(10, 64),
	}
	d := s.Decide(st)
	if d.Branch != "handover" {
		t.Fatalf("branch = %s (%+v)", d.Branch, d)
	}
	if d.DecodeSMs != 108 {
		t.Fatalf("handover should hand decode the full device: %+v", d)
	}
}

func TestWaitingQueueInflatesTTFT(t *testing.T) {
	s := testScheduler()
	st := slackState()
	base := s.predictNormTTFT(st, 54, true)
	for i := 0; i < 10; i++ {
		st.Waiting = append(st.Waiting, WaitingReq{Arrival: 9.9, InputTokens: 4096})
	}
	loaded := s.predictNormTTFT(st, 54, true)
	if loaded <= base {
		t.Fatalf("queued requests did not raise predicted TTFT: %v vs %v", loaded, base)
	}
}

func TestSortWaiting(t *testing.T) {
	s := testScheduler()
	reqs := []WaitingReq{
		{Arrival: 0, InputTokens: 10000},  // deadline 15
		{Arrival: 1, InputTokens: 100},    // deadline 1.15
		{Arrival: 0.5, InputTokens: 2000}, // deadline 3.5
	}
	s.SortWaiting(reqs)
	if reqs[0].InputTokens != 100 || reqs[1].InputTokens != 2000 || reqs[2].InputTokens != 10000 {
		t.Fatalf("order = %+v", reqs)
	}
}

func TestComplement(t *testing.T) {
	s := testScheduler()
	if got := s.complement(54); got != 54 {
		t.Fatalf("complement(54) = %d", got)
	}
	if got := s.complement(108); got != 6 {
		t.Fatalf("complement(108) = %d (clamped to smallest level)", got)
	}
	if got := s.complement(6); got != 102 {
		t.Fatalf("complement(6) = %d", got)
	}
}

func TestNewValidation(t *testing.T) {
	est := estimator.New(model.Tiny(), gpusim.TestGPU(), estimator.DefaultParams())
	defer func() {
		if recover() == nil {
			t.Fatal("empty levels accepted")
		}
	}()
	New(est, metrics.SLOFor("sharegpt"), Config{TotalLayers: 2, NumSMs: 8})
}

// Property: decisions always produce allocations from the level set (or
// the full device) and never exceed the device on strictly-partitioned
// branches.
func TestPropertyDecisionValid(t *testing.T) {
	s := testScheduler()
	valid := map[int]bool{108: true}
	for _, l := range s.cfg.Levels {
		valid[l] = true
	}
	f := func(tokU uint16, batchU, genU uint8, elapsedU uint16, waitU uint8) bool {
		st := State{
			Now: 100,
			Prefill: PrefillStatus{
				Active: true, Tokens: int(tokU%16000) + 64,
				LayersDone: int(genU % 32), StartTime: 99,
				Arrivals:    []sim.Time{sim.Time(99 - float64(elapsedU%200)/100)},
				InputTokens: []int{int(tokU%16000) + 64},
			},
			Decode: DecodeStatus{
				Batch:  int(batchU%128) + 1,
				AvgCtx: 1024,
			},
			PrefillSMs: 54, DecodeSMs: 54,
		}
		for i := 0; i < st.Decode.Batch; i++ {
			st.Decode.Elapsed = append(st.Decode.Elapsed, units.Seconds(elapsedU)/1000)
			st.Decode.Generated = append(st.Decode.Generated, int(genU)+1)
		}
		for i := 0; i < int(waitU%10); i++ {
			st.Waiting = append(st.Waiting, WaitingReq{Arrival: 99.5, InputTokens: 1024})
		}
		d := s.Decide(st)
		if !valid[d.PrefillSMs] || !valid[d.DecodeSMs] {
			return false
		}
		if d.PauseDecode && d.Branch != "pause-decode" {
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}

func repeatF(v units.Seconds, n int) []units.Seconds {
	out := make([]units.Seconds, n)
	for i := range out {
		out[i] = v
	}
	return out
}

func repeatI(v, n int) []int {
	out := make([]int, n)
	for i := range out {
		out[i] = v
	}
	return out
}

// BenchmarkDecide measures the scheduling decision cost (part of the
// Table 3 CPU overhead story).
func BenchmarkDecide(b *testing.B) {
	s := testScheduler()
	st := slackState()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_ = s.Decide(st)
	}
}

func TestReducePrefillFallbackWhenNothingFeasible(t *testing.T) {
	// TPOT hopeless at every split: the scheduler must still return a
	// valid partition (minimum prefill, rest to decode).
	s := testScheduler()
	st := slackState()
	st.Decode = DecodeStatus{
		Batch: 256, AvgCtx: 4096,
		Elapsed:   repeatF(10, 256), // absurdly behind
		Generated: repeatI(1, 256),
	}
	st.Prefill.Arrivals = []sim.Time{9.99}
	st.Prefill.InputTokens = []int{2048}
	d := s.Decide(st)
	if d.PrefillSMs <= 0 || d.DecodeSMs <= 0 {
		t.Fatalf("invalid decision %+v", d)
	}
	if d.PrefillSMs+d.DecodeSMs > 108 {
		t.Fatalf("oversubscribed fallback %+v", d)
	}
}

func TestLevelAtLeast(t *testing.T) {
	s := testScheduler()
	if got := s.levelAtLeast(1); got != 6 {
		t.Fatalf("levelAtLeast(1) = %d", got)
	}
	if got := s.levelAtLeast(7); got != 12 {
		t.Fatalf("levelAtLeast(7) = %d", got)
	}
	if got := s.levelAtLeast(1000); got != 108 {
		t.Fatalf("levelAtLeast(1000) = %d", got)
	}
}

func TestDeadline(t *testing.T) {
	w := WaitingReq{Arrival: 2, InputTokens: 1000}
	slo := metrics.SLO{NormTTFTMs: 1.5, TPOTMs: 100}
	if got := w.Deadline(slo); got != 3.5 {
		t.Fatalf("deadline = %v, want 3.5", got)
	}
}

func TestZeroAllocationSnapshotSanitized(t *testing.T) {
	// Snapshots before the first SetAllocation carry zeros; Decide must
	// treat them as full-device.
	s := testScheduler()
	st := slackState()
	st.PrefillSMs, st.DecodeSMs = 0, 0
	d := s.Decide(st) // must not panic
	if d.PrefillSMs <= 0 || d.DecodeSMs <= 0 {
		t.Fatalf("bad decision %+v", d)
	}
}

func TestSetCapacityShrinksDecisions(t *testing.T) {
	s := testScheduler()
	levels := []int{}
	for n := 6; n <= 96; n += 6 {
		levels = append(levels, n)
	}
	s.SetCapacity(96, levels)
	if s.Capacity() != 96 {
		t.Fatalf("Capacity = %d, want 96", s.Capacity())
	}
	// Idle and single-phase decisions now top out at the shrunken budget.
	if d := s.Decide(State{Now: 1}); d.PrefillSMs != 96 || d.DecodeSMs != 96 {
		t.Fatalf("idle decision after shrink = %+v", d)
	}
	st := slackState()
	st.Decode = DecodeStatus{}
	if d := s.Decide(st); d.PrefillSMs != 96 {
		t.Fatalf("prefill-only after shrink = %+v", d)
	}
	// Co-running decisions never exceed the new budget either.
	d := s.Decide(slackState())
	if d.PrefillSMs > 96 || d.DecodeSMs > 96 {
		t.Fatalf("co-run decision exceeds capacity: %+v", d)
	}
}

func TestSetCapacityClampsAdmissionMinimums(t *testing.T) {
	est := estimator.New(model.Llama31_8B(), gpusim.A100(), estimator.DefaultParams())
	s := New(est, metrics.SLOFor("azure-code"), Config{
		TotalLayers:   32,
		NumSMs:        108,
		Levels:        []int{12, 24, 36, 48, 60, 72, 84, 96, 108},
		MinPrefillSMs: 24,
		MinDecodeSMs:  24,
	})
	// Shrink below the configured minimums: they must clamp to the new
	// smallest level so a feasible split still exists.
	s.SetCapacity(18, []int{6, 12, 18})
	if s.cfg.MinPrefillSMs != 6 || s.cfg.MinDecodeSMs != 6 {
		t.Fatalf("minimums after shrink = %d/%d, want 6/6",
			s.cfg.MinPrefillSMs, s.cfg.MinDecodeSMs)
	}
	d := s.Decide(slackState())
	if d.PrefillSMs > 18 || d.DecodeSMs > 18 {
		t.Fatalf("decision exceeds 18-SM capacity: %+v", d)
	}
}

func TestSetCapacityValidation(t *testing.T) {
	cases := []struct {
		name   string
		numSMs int
		levels []int
	}{
		{"zero SMs", 0, []int{6}},
		{"no levels", 54, nil},
		{"unsorted levels", 54, []int{12, 6}},
	}
	for _, c := range cases {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: SetCapacity(%d, %v) accepted", c.name, c.numSMs, c.levels)
				}
			}()
			testScheduler().SetCapacity(c.numSMs, c.levels)
		}()
	}
}
