// Package serving provides the experiment harness shared by Bullet and
// every baseline: a simulated environment (clock, GPU, model, KV pool,
// SLO) plus a runner that feeds a workload trace into a serving system and
// collects per-request metrics.
package serving

import (
	"fmt"

	"repro/internal/gpusim"
	"repro/internal/kvcache"
	"repro/internal/metrics"
	"repro/internal/model"
	"repro/internal/sim"
	"repro/internal/workload"
)

// DefaultKVReserveBytes is HBM held back for activations and runtime
// state when planning the KV pool.
const DefaultKVReserveBytes = 4e9

// DefaultMaxShed bounds how many shed requests the environment stores for
// inspection; excess sheds are counted but dropped (like the timeline's
// event cap, an overload run must not grow memory without bound).
const DefaultMaxShed = 4096

// KVBlockTokens is the PagedAttention block size in tokens.
const KVBlockTokens = 16

// Env bundles the simulated infrastructure one serving system runs on.
type Env struct {
	Sim   *sim.Simulation
	GPU   *gpusim.GPU
	Model model.Config
	KV    *kvcache.Pool
	SLO   metrics.SLO

	// MaxShed caps how many shed requests are retained (for reports and
	// tests); 0 means DefaultMaxShed. Sheds past the cap still count —
	// run completion and Result.Shed use the counter, not the slice.
	MaxShed int

	completed   []metrics.Request
	shed        []workload.Request
	shedCount   int
	shedDropped int
	// OnComplete, when set, observes every completion as it happens.
	OnComplete func(metrics.Request)
	// OnShed, when set, observes every shed request as it happens.
	OnShed func(workload.Request)
	// OnDrain, when set, runs after the last request completes and
	// before the end-of-run KV invariant check — the hook caches (e.g.
	// the prefix cache) use to release long-lived pool allocations.
	OnDrain func()
}

// NewEnv builds a fresh environment: one simulated device, the model, and
// a KV pool sized from the device memory budget.
func NewEnv(spec gpusim.Spec, cfg model.Config, dataset string) *Env {
	return NewEnvWithSim(sim.New(), spec, cfg, dataset)
}

// NewEnvWithSim builds an environment on an existing simulation, so that
// several devices (disaggregation, replica clusters) share one virtual
// clock.
func NewEnvWithSim(s *sim.Simulation, spec gpusim.Spec, cfg model.Config, dataset string) *Env {
	if err := cfg.Validate(); err != nil {
		panic(fmt.Sprintf("serving: invalid model config %s: %v", cfg.Name, err))
	}
	gpu := gpusim.New(s, spec)
	blocks := kvcache.PlanBlocks(spec.HBMBytes, cfg.WeightBytes(), DefaultKVReserveBytes,
		cfg.KVBytesPerToken(), KVBlockTokens)
	if blocks <= 0 {
		panic(fmt.Sprintf("serving: model %s does not fit on %s", cfg.Name, spec.Name))
	}
	return &Env{
		Sim:   s,
		GPU:   gpu,
		Model: cfg,
		KV:    kvcache.NewPool(blocks, KVBlockTokens),
		SLO:   metrics.SLOFor(dataset),
	}
}

// Complete records a finished request. Systems must call this exactly once
// per submitted request.
func (e *Env) Complete(r metrics.Request) {
	r.Validate()
	//lint:ignore hotalloc one append per completed request lifetime, not per step; growth is amortized
	e.completed = append(e.completed, r)
	if e.OnComplete != nil {
		e.OnComplete(r)
	}
}

// Completed returns the requests finished so far.
func (e *Env) Completed() []metrics.Request { return e.completed }

// Shed records a request permanently given up on (a resilience path that
// ran out of retries). Shed requests count toward run completion — every
// submitted request must end in exactly one of Complete or Shed — but
// never toward the summary metrics.
func (e *Env) Shed(r workload.Request) {
	e.shedCount++
	limit := e.MaxShed
	if limit <= 0 {
		limit = DefaultMaxShed
	}
	if len(e.shed) < limit {
		//lint:ignore hotalloc one append per shed request lifetime, bounded by MaxShed
		e.shed = append(e.shed, r)
	} else {
		e.shedDropped++
	}
	if e.OnShed != nil {
		e.OnShed(r)
	}
}

// ShedRequests returns the retained shed requests (at most MaxShed; see
// ShedDropped for the overflow count).
func (e *Env) ShedRequests() []workload.Request { return e.shed }

// ShedCount returns how many requests were shed in total, including any
// dropped past the retention cap.
func (e *Env) ShedCount() int { return e.shedCount }

// ShedDropped returns how many shed records were dropped by the cap.
func (e *Env) ShedDropped() int { return e.shedDropped }

// System is a serving engine under test. Submit is invoked from the
// simulation event loop at each request's arrival time; the system must
// eventually call Env.Complete for it.
type System interface {
	Name() string
	Submit(r workload.Request)
}

// Result is the outcome of one serving run.
type Result struct {
	System   string
	Dataset  string
	Rate     float64
	Summary  metrics.Summary
	Requests []metrics.Request
	GPUStats gpusim.Stats
	// Makespan is the simulated time at which the last request finished.
	Makespan sim.Time
	// Shed counts requests given up on under faults (0 in healthy runs).
	Shed int
}

// maxEventsPerRequest bounds runaway simulations.
const maxEventsPerRequest = 200000

// Run feeds the trace into the system and runs the simulation until every
// request completes. It panics if the event queue drains while requests
// are outstanding (a deadlocked system is always a bug worth failing
// loudly on).
func (e *Env) Run(sys System, trace *workload.Trace) Result {
	for _, r := range trace.Requests {
		r := r
		e.Sim.Post(r.Arrival, func() { sys.Submit(r) })
	}
	budget := uint64(len(trace.Requests)+1) * maxEventsPerRequest
	for uint64(len(e.completed)+e.shedCount) < uint64(len(trace.Requests)) {
		if !e.Sim.Step() {
			panic(fmt.Sprintf("serving: %s deadlocked with %d/%d requests complete (%d shed) at t=%.3f",
				sys.Name(), len(e.completed), len(trace.Requests), e.shedCount, e.Sim.Now()))
		}
		if e.Sim.Processed() > budget {
			panic(fmt.Sprintf("serving: %s exceeded event budget (%d events, %d/%d complete, %d shed)",
				sys.Name(), e.Sim.Processed(), len(e.completed), len(trace.Requests), e.shedCount))
		}
	}
	if e.OnDrain != nil {
		e.OnDrain()
	}
	e.KV.CheckInvariants()
	if used := e.KV.UsedBlocks(); used != 0 {
		panic(fmt.Sprintf("serving: %s leaked %d KV blocks", sys.Name(), used))
	}
	return Result{
		System:   sys.Name(),
		Dataset:  trace.Dataset,
		Rate:     trace.Rate,
		Summary:  metrics.Summarize(e.completed, e.SLO),
		Requests: e.completed,
		GPUStats: e.GPU.Stats(),
		Makespan: e.Sim.Now(),
		Shed:     e.shedCount,
	}
}
