package serving

import (
	"strings"
	"testing"

	"repro/internal/gpusim"
	"repro/internal/metrics"
	"repro/internal/model"
	"repro/internal/sim"
	"repro/internal/workload"
)

// echoSystem completes each request after a fixed simulated delay.
type echoSystem struct {
	env   *Env
	delay sim.Time
	leak  bool // when set, allocate KV and never free it
	stall bool // when set, never complete anything
}

func (e *echoSystem) Name() string { return "echo" }

func (e *echoSystem) Submit(r workload.Request) {
	if e.stall {
		return
	}
	if e.leak {
		if _, err := e.env.KV.Allocate(r.ID, r.InputTokens, "echo"); err != nil {
			panic(err)
		}
	}
	e.env.Sim.After(e.delay, func() {
		now := e.env.Sim.Now()
		e.env.Complete(metrics.Request{
			ID: r.ID, Dataset: r.Dataset, Arrival: r.Arrival,
			PrefillStart: r.Arrival, FirstToken: now - e.delay/2, Finish: now,
			InputTokens: r.InputTokens, OutputTokens: r.OutputTokens,
		})
	})
}

func smallTrace(n int) *workload.Trace {
	return workload.Generate(workload.ShareGPT, 5, n, 1)
}

func TestNewEnvPlansKV(t *testing.T) {
	env := NewEnv(gpusim.A100(), model.Llama31_8B(), "sharegpt")
	if env.KV.TotalTokens() < 300000 {
		t.Fatalf("KV capacity = %d tokens, implausibly small", env.KV.TotalTokens())
	}
	if env.SLO != metrics.SLOFor("sharegpt") {
		t.Fatalf("SLO = %+v", env.SLO)
	}
}

func TestNewEnvRejectsOversizedModel(t *testing.T) {
	big := model.Llama31_8B()
	big.NumLayers = 400 // ~100B params: does not fit in 80 GB
	defer func() {
		if recover() == nil {
			t.Fatal("oversized model accepted")
		}
	}()
	NewEnv(gpusim.A100(), big, "sharegpt")
}

func TestRunCompletesTrace(t *testing.T) {
	env := NewEnv(gpusim.A100(), model.Llama31_8B(), "sharegpt")
	sys := &echoSystem{env: env, delay: 0.2}
	res := env.Run(sys, smallTrace(20))
	if res.Summary.Requests != 20 {
		t.Fatalf("completed %d", res.Summary.Requests)
	}
	if res.System != "echo" || res.Dataset != "sharegpt" {
		t.Fatalf("labels: %+v", res)
	}
	if res.Makespan <= 0 {
		t.Fatal("no makespan")
	}
}

func TestOnCompleteHook(t *testing.T) {
	env := NewEnv(gpusim.A100(), model.Llama31_8B(), "sharegpt")
	seen := 0
	env.OnComplete = func(metrics.Request) { seen++ }
	sys := &echoSystem{env: env, delay: 0.1}
	env.Run(sys, smallTrace(5))
	if seen != 5 {
		t.Fatalf("hook saw %d/5", seen)
	}
}

func TestDeadlockPanics(t *testing.T) {
	env := NewEnv(gpusim.A100(), model.Llama31_8B(), "sharegpt")
	sys := &echoSystem{env: env, delay: 0.1, stall: true}
	defer func() {
		r := recover()
		if r == nil {
			t.Fatal("stalled system did not panic")
		}
		if !strings.Contains(r.(string), "deadlock") {
			t.Fatalf("panic = %v", r)
		}
	}()
	env.Run(sys, smallTrace(3))
}

func TestKVLeakPanics(t *testing.T) {
	env := NewEnv(gpusim.A100(), model.Llama31_8B(), "sharegpt")
	sys := &echoSystem{env: env, delay: 0.1, leak: true}
	defer func() {
		r := recover()
		if r == nil {
			t.Fatal("leaking system did not panic")
		}
		if !strings.Contains(r.(string), "leaked") {
			t.Fatalf("panic = %v", r)
		}
	}()
	env.Run(sys, smallTrace(3))
}
