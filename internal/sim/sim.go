// Package sim provides a deterministic discrete-event simulation core:
// a virtual clock, an event queue with stable FIFO ordering for
// simultaneous events, and cancellable timers.
//
// All other simulated subsystems (the GPU, the serving engines, the
// workload arrival process) are driven from a single Simulation instance,
// which makes every experiment in this repository fully deterministic and
// reproducible from a seed.
package sim

import (
	"container/heap"
	"fmt"

	"repro/internal/units"
)

// Time is simulated time in seconds — an alias for units.Seconds, so
// every timestamp flowing out of the event core is unit-typed without a
// conversion layer. float64 resolution (~1e-15 of the magnitude) is far
// below the microsecond granularity we care about.
type Time = units.Seconds

// Event is a scheduled callback. It is returned by At/After so callers can
// cancel it before it fires.
type Event struct {
	at      Time
	seq     uint64 // tie-break: FIFO among simultaneous events
	fn      func()
	index   int // heap index, -1 when not queued
	dead    bool
	created Time
}

// At returns the simulated time this event fires at.
func (e *Event) At() Time { return e.at }

// Cancelled reports whether the event was cancelled (or already fired).
func (e *Event) Cancelled() bool { return e.dead }

type eventQueue []*Event

func (q eventQueue) Len() int { return len(q) }
func (q eventQueue) Less(i, j int) bool {
	if q[i].at < q[j].at {
		return true
	}
	if q[j].at < q[i].at {
		return false
	}
	return q[i].seq < q[j].seq
}
func (q eventQueue) Swap(i, j int) {
	q[i], q[j] = q[j], q[i]
	q[i].index = i
	q[j].index = j
}
func (q *eventQueue) Push(x any) {
	e := x.(*Event)
	e.index = len(*q)
	*q = append(*q, e)
}
func (q *eventQueue) Pop() any {
	old := *q
	n := len(old)
	e := old[n-1]
	old[n-1] = nil
	e.index = -1
	*q = old[:n-1]
	return e
}

// Simulation owns the virtual clock and the pending event set.
// The zero value is not usable; call New.
type Simulation struct {
	now     Time
	queue   eventQueue
	seq     uint64
	stopped bool
	// Processed counts events fired since creation (for diagnostics).
	processed uint64
}

// New creates an empty simulation at time zero.
func New() *Simulation {
	return &Simulation{}
}

// Now returns the current simulated time.
func (s *Simulation) Now() Time { return s.now }

// Processed returns the number of events fired so far.
func (s *Simulation) Processed() uint64 { return s.processed }

// Pending returns the number of events currently scheduled.
func (s *Simulation) Pending() int { return len(s.queue) }

// NextAt returns the firing time of the earliest live pending event, or
// false when none remain. Cancelled events encountered at the queue head
// are discarded on the way. Conservative-window drivers (the cluster's
// replica pump) use this to pick the next horizon every sub-simulation
// can safely advance to.
func (s *Simulation) NextAt() (Time, bool) {
	for len(s.queue) > 0 {
		if s.queue[0].dead {
			heap.Pop(&s.queue)
			continue
		}
		return s.queue[0].at, true
	}
	return 0, false
}

// At schedules fn to run at absolute time t. Scheduling in the past (t <
// Now) panics: that is always a logic error in a discrete-event model.
func (s *Simulation) At(t Time, fn func()) *Event {
	if t < s.now {
		panic(fmt.Sprintf("sim: scheduling event at %.9g before now %.9g", t, s.now))
	}
	if units.IsNaN(t) || units.IsInf(t, 0) {
		panic(fmt.Sprintf("sim: scheduling event at non-finite time %v", t))
	}
	e := &Event{at: t, seq: s.seq, fn: fn, created: s.now}
	s.seq++
	heap.Push(&s.queue, e)
	return e
}

// After schedules fn to run d seconds from now.
func (s *Simulation) After(d Time, fn func()) *Event {
	return s.At(s.now+d, fn)
}

// Cancel removes a pending event. Cancelling a fired or already-cancelled
// event is a no-op.
func (s *Simulation) Cancel(e *Event) {
	if e == nil || e.dead {
		return
	}
	e.dead = true
	if e.index >= 0 {
		heap.Remove(&s.queue, e.index)
	}
}

// Reschedule moves a pending event to a new absolute time, preserving
// cancellation identity. If the event already fired it is a no-op and
// returns false.
func (s *Simulation) Reschedule(e *Event, t Time) bool {
	if e == nil || e.dead || e.index < 0 {
		return false
	}
	if t < s.now {
		panic(fmt.Sprintf("sim: rescheduling event to %.9g before now %.9g", t, s.now))
	}
	e.at = t
	e.seq = s.seq
	s.seq++
	heap.Fix(&s.queue, e.index)
	return true
}

// Step fires the next event, advancing the clock. It returns false when no
// events remain.
func (s *Simulation) Step() bool {
	for len(s.queue) > 0 {
		e := heap.Pop(&s.queue).(*Event)
		if e.dead {
			continue
		}
		e.dead = true
		s.now = e.at
		s.processed++
		e.fn()
		return true
	}
	return false
}

// Run processes events until the queue drains or the clock would pass
// until. Events at exactly until are fired. It returns the number of events
// processed.
func (s *Simulation) Run(until Time) uint64 {
	start := s.processed
	for len(s.queue) > 0 {
		next := s.queue[0]
		if next.dead {
			heap.Pop(&s.queue)
			continue
		}
		if next.at > until {
			break
		}
		s.Step()
		if s.stopped {
			s.stopped = false
			break
		}
	}
	if s.now < until {
		// Advance the clock to the horizon so repeated Run calls are
		// idempotent in time.
		s.now = until
	}
	return s.processed - start
}

// RunAll processes events until the queue drains. A safety cap avoids
// spinning forever on self-perpetuating schedules; exceeding it panics.
func (s *Simulation) RunAll(maxEvents uint64) uint64 {
	start := s.processed
	for s.Step() {
		if s.processed-start > maxEvents {
			panic(fmt.Sprintf("sim: RunAll exceeded %d events; runaway schedule?", maxEvents))
		}
		if s.stopped {
			s.stopped = false
			break
		}
	}
	return s.processed - start
}

// Stop makes the current Run/RunAll invocation return after the in-flight
// event completes.
func (s *Simulation) Stop() { s.stopped = true }
