// Package sim provides a deterministic discrete-event simulation core:
// a virtual clock, an event queue with stable FIFO ordering for
// simultaneous events, and cancellable timers.
//
// All other simulated subsystems (the GPU, the serving engines, the
// workload arrival process) are driven from a single Simulation instance,
// which makes every experiment in this repository fully deterministic and
// reproducible from a seed.
//
// Two scheduling APIs coexist. At/After return a cancellable *Event
// handle and allocate a fresh event per call — callers like the GPU
// launch path retain the handle across arbitrary simulated time, so
// those events are garbage-collected, never recycled. Post/PostAfter are
// the hot-path variants: no handle, no cancellation, and the event
// struct comes from an internal arena that recycles it the moment it
// fires, so the steady-state schedule/fire cycle performs zero heap
// allocations.
package sim

import (
	"fmt"

	"repro/internal/units"
)

// Time is simulated time in seconds — an alias for units.Seconds, so
// every timestamp flowing out of the event core is unit-typed without a
// conversion layer. float64 resolution (~1e-15 of the magnitude) is far
// below the microsecond granularity we care about.
type Time = units.Seconds

// Event is a scheduled callback. It is returned by At/After so callers can
// cancel it before it fires. Events scheduled through Post/PostAfter are
// pool-owned and never escape to callers.
type Event struct {
	at      Time
	seq     uint64 // tie-break: FIFO among simultaneous events
	fn      func()
	index   int // heap index, -1 when not queued
	dead    bool
	pooled  bool // owned by the arena; recycled when it fires
	created Time
}

// At returns the simulated time this event fires at.
func (e *Event) At() Time { return e.at }

// Cancelled reports whether the event was cancelled (or already fired).
func (e *Event) Cancelled() bool { return e.dead }

// Simulation owns the virtual clock and the pending event set.
// The zero value is not usable; call New.
type Simulation struct {
	now     Time
	queue   []*Event
	seq     uint64
	stopped bool
	// Processed counts events fired since creation (for diagnostics).
	processed uint64
	// Pooled-event arena: free holds recycled events, chunk is the
	// bump-allocation tail of the most recent arena block.
	free  []*Event
	chunk []Event
}

// New creates an empty simulation at time zero.
func New() *Simulation {
	return &Simulation{}
}

// Now returns the current simulated time.
func (s *Simulation) Now() Time { return s.now }

// Processed returns the number of events fired so far.
func (s *Simulation) Processed() uint64 { return s.processed }

// Pending returns the number of events currently scheduled.
func (s *Simulation) Pending() int { return len(s.queue) }

// eventLess orders the queue by firing time, then by scheduling sequence
// so simultaneous events fire FIFO.
func eventLess(a, b *Event) bool {
	if a.at < b.at {
		return true
	}
	if b.at < a.at {
		return false
	}
	return a.seq < b.seq
}

// The queue is a hand-rolled binary min-heap rather than container/heap:
// the stdlib interface takes `any` operands, which boxes on every push
// and pop — measurable on the event loop, the innermost loop of every
// experiment.

//bullet:hotpath
func (s *Simulation) pushEvent(e *Event) {
	e.index = len(s.queue)
	//lint:ignore hotalloc queue growth is amortized; steady state reuses capacity
	s.queue = append(s.queue, e)
	s.siftUp(e.index)
}

//bullet:hotpath
func (s *Simulation) siftUp(i int) {
	q := s.queue
	e := q[i]
	for i > 0 {
		parent := (i - 1) / 2
		p := q[parent]
		if !eventLess(e, p) {
			break
		}
		q[i] = p
		p.index = i
		i = parent
	}
	q[i] = e
	e.index = i
}

//bullet:hotpath
func (s *Simulation) siftDown(i int) {
	q := s.queue
	n := len(q)
	e := q[i]
	for {
		c := 2*i + 1
		if c >= n {
			break
		}
		if r := c + 1; r < n && eventLess(q[r], q[c]) {
			c = r
		}
		if !eventLess(q[c], e) {
			break
		}
		q[i] = q[c]
		q[i].index = i
		i = c
	}
	q[i] = e
	e.index = i
}

// popMin removes and returns the earliest event.
//
//bullet:hotpath
func (s *Simulation) popMin() *Event {
	q := s.queue
	n := len(q) - 1
	e := q[0]
	last := q[n]
	q[n] = nil
	s.queue = q[:n]
	if n > 0 {
		q[0] = last
		last.index = 0
		s.siftDown(0)
	}
	e.index = -1
	return e
}

// removeAt deletes the event at heap index i, restoring the heap
// property around the displaced last element.
func (s *Simulation) removeAt(i int) {
	q := s.queue
	n := len(q) - 1
	e := q[i]
	if i != n {
		moved := q[n]
		q[i] = moved
		moved.index = i
	}
	q[n] = nil
	s.queue = q[:n]
	if i < n {
		moved := s.queue[i]
		s.siftDown(i)
		if moved.index == i {
			s.siftUp(i)
		}
	}
	e.index = -1
}

// allocEvent hands out a pooled event: from the free list when one has
// been recycled, else bump-allocated from the current arena chunk.
//
//bullet:hotpath
func (s *Simulation) allocEvent() *Event {
	if n := len(s.free); n > 0 {
		e := s.free[n-1]
		s.free[n-1] = nil
		s.free = s.free[:n-1]
		return e
	}
	if len(s.chunk) == 0 {
		//lint:ignore hotalloc arena miss allocates a block of 64; steady state recycles
		s.chunk = make([]Event, 64)
	}
	e := &s.chunk[0]
	s.chunk = s.chunk[1:]
	return e
}

// recycleEvent returns a fired pooled event to the free list. The
// callback reference is dropped so the arena never pins caller closures.
//
//bullet:hotpath
func (s *Simulation) recycleEvent(e *Event) {
	e.fn = nil
	//lint:ignore hotalloc free-list growth is bounded by the arena; steady state reuses capacity
	s.free = append(s.free, e)
}

// NextAt returns the firing time of the earliest live pending event, or
// false when none remain. Cancelled events encountered at the queue head
// are discarded on the way. Conservative-window drivers (the cluster's
// replica pump) use this to pick the next horizon every sub-simulation
// can safely advance to.
//
//bullet:hotpath
func (s *Simulation) NextAt() (Time, bool) {
	for len(s.queue) > 0 {
		if s.queue[0].dead {
			e := s.popMin()
			if e.pooled {
				s.recycleEvent(e)
			}
			continue
		}
		return s.queue[0].at, true
	}
	return 0, false
}

// checkTime validates a scheduling target against the clock.
//
//bullet:hotpath
func (s *Simulation) checkTime(t Time, verb string) {
	if t < s.now {
		panic(fmt.Sprintf("sim: %s event at %.9g before now %.9g", verb, t, s.now))
	}
	if units.IsNaN(t) || units.IsInf(t, 0) {
		panic(fmt.Sprintf("sim: %s event at non-finite time %v", verb, t))
	}
}

// At schedules fn to run at absolute time t and returns a cancellable
// handle. Scheduling in the past (t < Now) panics: that is always a
// logic error in a discrete-event model. Call sites that never cancel
// should prefer Post, which recycles its event storage.
//
//bullet:hotpath
func (s *Simulation) At(t Time, fn func()) *Event {
	s.checkTime(t, "scheduling")
	//lint:ignore hotalloc the handle escapes to the caller by design; pooled Post covers no-handle call sites
	e := &Event{at: t, seq: s.seq, fn: fn, created: s.now}
	s.seq++
	s.pushEvent(e)
	return e
}

// After schedules fn to run d seconds from now.
//
//bullet:hotpath
func (s *Simulation) After(d Time, fn func()) *Event {
	return s.At(s.now+d, fn)
}

// Post schedules fn to run at absolute time t with no handle: the event
// cannot be cancelled or rescheduled, and its storage is recycled the
// moment it fires. This is the allocation-free path for the vast
// majority of schedules (engine cycles, pipeline stage completions,
// arrival injection) that never retain the returned *Event.
//
//bullet:hotpath
func (s *Simulation) Post(t Time, fn func()) {
	s.checkTime(t, "posting")
	e := s.allocEvent()
	*e = Event{at: t, seq: s.seq, fn: fn, created: s.now, pooled: true}
	s.seq++
	s.pushEvent(e)
}

// PostAfter schedules fn to run d seconds from now, without a handle
// (see Post).
//
//bullet:hotpath
func (s *Simulation) PostAfter(d Time, fn func()) {
	s.Post(s.now+d, fn)
}

// Cancel removes a pending event. Cancelling a fired or already-cancelled
// event is a no-op.
func (s *Simulation) Cancel(e *Event) {
	if e == nil || e.dead {
		return
	}
	e.dead = true
	if e.index >= 0 {
		s.removeAt(e.index)
	}
}

// Reschedule moves a pending event to a new absolute time, preserving
// cancellation identity. If the event already fired it is a no-op and
// returns false.
func (s *Simulation) Reschedule(e *Event, t Time) bool {
	if e == nil || e.dead || e.index < 0 {
		return false
	}
	if t < s.now {
		panic(fmt.Sprintf("sim: rescheduling event to %.9g before now %.9g", t, s.now))
	}
	e.at = t
	e.seq = s.seq
	s.seq++
	i := e.index
	s.siftDown(i)
	if e.index == i {
		s.siftUp(i)
	}
	return true
}

// Step fires the next event, advancing the clock. It returns false when no
// events remain. Pooled events are recycled before their callback runs,
// so a callback that posts a follow-up event reuses the storage of the
// event being fired — the zero-allocation steady state of every
// self-rescheduling loop in the tree.
//
//bullet:hotpath
func (s *Simulation) Step() bool {
	for len(s.queue) > 0 {
		e := s.popMin()
		if e.dead {
			if e.pooled {
				s.recycleEvent(e)
			}
			continue
		}
		e.dead = true
		s.now = e.at
		s.processed++
		fn := e.fn
		if e.pooled {
			s.recycleEvent(e)
		}
		fn()
		return true
	}
	return false
}

// Run processes events until the queue drains or the clock would pass
// until. Events at exactly until are fired. It returns the number of events
// processed.
//
//bullet:hotpath
func (s *Simulation) Run(until Time) uint64 {
	start := s.processed
	for len(s.queue) > 0 {
		next := s.queue[0]
		if next.dead {
			e := s.popMin()
			if e.pooled {
				s.recycleEvent(e)
			}
			continue
		}
		if next.at > until {
			break
		}
		s.Step()
		if s.stopped {
			s.stopped = false
			break
		}
	}
	if s.now < until {
		// Advance the clock to the horizon so repeated Run calls are
		// idempotent in time.
		s.now = until
	}
	return s.processed - start
}

// RunAll processes events until the queue drains. A safety cap avoids
// spinning forever on self-perpetuating schedules; exceeding it panics.
func (s *Simulation) RunAll(maxEvents uint64) uint64 {
	start := s.processed
	for s.Step() {
		if s.processed-start > maxEvents {
			panic(fmt.Sprintf("sim: RunAll exceeded %d events; runaway schedule?", maxEvents))
		}
		if s.stopped {
			s.stopped = false
			break
		}
	}
	return s.processed - start
}

// Stop makes the current Run/RunAll invocation return after the in-flight
// event completes.
func (s *Simulation) Stop() { s.stopped = true }
