package sim

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func TestAtOrdering(t *testing.T) {
	s := New()
	var got []int
	s.At(3, func() { got = append(got, 3) })
	s.At(1, func() { got = append(got, 1) })
	s.At(2, func() { got = append(got, 2) })
	s.RunAll(100)
	want := []int{1, 2, 3}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("order = %v, want %v", got, want)
		}
	}
}

func TestSimultaneousEventsFIFO(t *testing.T) {
	s := New()
	var got []int
	for i := 0; i < 10; i++ {
		i := i
		s.At(5, func() { got = append(got, i) })
	}
	s.RunAll(100)
	for i := range got {
		if got[i] != i {
			t.Fatalf("FIFO violated at %d: %v", i, got)
		}
	}
}

func TestAfterAdvancesClock(t *testing.T) {
	s := New()
	var at Time
	s.After(2.5, func() { at = s.Now() })
	s.RunAll(10)
	if at != 2.5 {
		t.Fatalf("fired at %v, want 2.5", at)
	}
	if s.Now() != 2.5 {
		t.Fatalf("clock = %v, want 2.5", s.Now())
	}
}

func TestNestedScheduling(t *testing.T) {
	s := New()
	var trace []Time
	s.At(1, func() {
		trace = append(trace, s.Now())
		s.After(1, func() {
			trace = append(trace, s.Now())
		})
	})
	s.RunAll(10)
	if len(trace) != 2 || trace[0] != 1 || trace[1] != 2 {
		t.Fatalf("trace = %v", trace)
	}
}

func TestCancel(t *testing.T) {
	s := New()
	fired := false
	e := s.At(1, func() { fired = true })
	s.Cancel(e)
	s.RunAll(10)
	if fired {
		t.Fatal("cancelled event fired")
	}
	if !e.Cancelled() {
		t.Fatal("event not marked cancelled")
	}
	// Double-cancel must be a no-op.
	s.Cancel(e)
}

func TestCancelDuringRun(t *testing.T) {
	s := New()
	var e2 *Event
	fired := false
	s.At(1, func() { s.Cancel(e2) })
	e2 = s.At(2, func() { fired = true })
	s.RunAll(10)
	if fired {
		t.Fatal("event cancelled from earlier event still fired")
	}
}

func TestReschedule(t *testing.T) {
	s := New()
	var at Time
	e := s.At(5, func() { at = s.Now() })
	if !s.Reschedule(e, 2) {
		t.Fatal("reschedule failed")
	}
	s.RunAll(10)
	if at != 2 {
		t.Fatalf("fired at %v, want 2", at)
	}
	if s.Reschedule(e, 3) {
		t.Fatal("reschedule of fired event succeeded")
	}
}

func TestRescheduleLater(t *testing.T) {
	s := New()
	var order []string
	e := s.At(1, func() { order = append(order, "a") })
	s.At(2, func() { order = append(order, "b") })
	s.Reschedule(e, 3)
	s.RunAll(10)
	if len(order) != 2 || order[0] != "b" || order[1] != "a" {
		t.Fatalf("order = %v", order)
	}
}

func TestRunUntil(t *testing.T) {
	s := New()
	var fired []Time
	for _, tt := range []Time{1, 2, 3, 4} {
		tt := tt
		s.At(tt, func() { fired = append(fired, tt) })
	}
	n := s.Run(2.5)
	if n != 2 {
		t.Fatalf("processed %d, want 2", n)
	}
	if s.Now() != 2.5 {
		t.Fatalf("clock = %v, want 2.5", s.Now())
	}
	n = s.Run(10)
	if n != 2 {
		t.Fatalf("second run processed %d, want 2", n)
	}
}

func TestRunBoundaryInclusive(t *testing.T) {
	s := New()
	fired := false
	s.At(2, func() { fired = true })
	s.Run(2)
	if !fired {
		t.Fatal("event at exactly the horizon did not fire")
	}
}

func TestSchedulingInPastPanics(t *testing.T) {
	s := New()
	s.At(5, func() {})
	s.RunAll(10)
	defer func() {
		if recover() == nil {
			t.Fatal("no panic scheduling in the past")
		}
	}()
	s.At(1, func() {})
}

func TestStop(t *testing.T) {
	s := New()
	count := 0
	for i := 1; i <= 5; i++ {
		s.At(Time(i), func() {
			count++
			if count == 2 {
				s.Stop()
			}
		})
	}
	s.RunAll(100)
	if count != 2 {
		t.Fatalf("count = %d, want 2 after Stop", count)
	}
	// A later RunAll resumes.
	s.RunAll(100)
	if count != 5 {
		t.Fatalf("count = %d, want 5 after resume", count)
	}
}

func TestPendingAndProcessedCounters(t *testing.T) {
	s := New()
	s.At(1, func() {})
	s.At(2, func() {})
	if s.Pending() != 2 {
		t.Fatalf("pending = %d, want 2", s.Pending())
	}
	s.RunAll(10)
	if s.Pending() != 0 || s.Processed() != 2 {
		t.Fatalf("pending=%d processed=%d", s.Pending(), s.Processed())
	}
}

// Property: events fire in nondecreasing time order regardless of the
// insertion order.
func TestPropertyTimeOrdered(t *testing.T) {
	f := func(raw []uint16) bool {
		if len(raw) == 0 {
			return true
		}
		s := New()
		var fired []Time
		for _, r := range raw {
			tt := Time(r) / 16
			s.At(tt, func() { fired = append(fired, s.Now()) })
		}
		s.RunAll(uint64(len(raw)) + 1)
		if len(fired) != len(raw) {
			return false
		}
		return sort.SliceIsSorted(fired, func(i, j int) bool { return fired[i] < fired[j] })
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property: cancelling a random subset fires exactly the complement.
func TestPropertyCancelSubset(t *testing.T) {
	f := func(n uint8, seed int64) bool {
		s := New()
		rng := rand.New(rand.NewSource(seed))
		total := int(n%64) + 1
		firedCount := 0
		events := make([]*Event, total)
		for i := 0; i < total; i++ {
			events[i] = s.At(Time(rng.Intn(50)), func() { firedCount++ })
		}
		cancelled := 0
		for _, e := range events {
			if rng.Intn(2) == 0 {
				s.Cancel(e)
				cancelled++
			}
		}
		s.RunAll(uint64(total) + 1)
		return firedCount == total-cancelled
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// NextAt must report the earliest live event, skipping cancelled heads,
// and report nothing on an empty queue.
func TestNextAt(t *testing.T) {
	s := New()
	if _, ok := s.NextAt(); ok {
		t.Fatal("empty queue reported a next event")
	}
	e1 := s.At(1, func() {})
	s.At(3, func() {})
	if at, ok := s.NextAt(); !ok || at != 1 {
		t.Fatalf("NextAt = %v, %v; want 1, true", at, ok)
	}
	s.Cancel(e1)
	if at, ok := s.NextAt(); !ok || at != 3 {
		t.Fatalf("after cancelling head, NextAt = %v, %v; want 3, true", at, ok)
	}
	s.Step()
	if _, ok := s.NextAt(); ok {
		t.Fatal("drained queue reported a next event")
	}
}

func BenchmarkScheduleAndFire(b *testing.B) {
	s := New()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		s.After(1, func() {})
		s.Step()
	}
}
