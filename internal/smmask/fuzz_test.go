package smmask

import "testing"

// FuzzSetAlgebra checks mask algebra identities on arbitrary word
// patterns.
func FuzzSetAlgebra(f *testing.F) {
	f.Add(uint64(0), uint64(0), uint64(5), uint64(9))
	f.Add(^uint64(0), uint64(1), uint64(1<<40), ^uint64(7))
	f.Fuzz(func(t *testing.T, a0, a1, b0, b1 uint64) {
		a := Mask{a0, a1, 0, 0}
		b := Mask{b0, b1, 0, 0}
		if got := a.Union(b).Count(); got != a.Count()+b.Count()-a.Intersect(b).Count() {
			t.Fatalf("inclusion-exclusion violated: %d", got)
		}
		if a.Diff(b).Overlaps(b) {
			t.Fatal("diff overlaps subtrahend")
		}
		if !a.Intersect(b).SubsetOf(a) || !a.Intersect(b).SubsetOf(b) {
			t.Fatal("intersection not a subset")
		}
		up := a.AlignUp()
		if !a.SubsetOf(up) || !up.Aligned() {
			t.Fatal("AlignUp broken")
		}
		// Round-trip through indices.
		var back Mask
		for _, i := range a.Indices() {
			back.Set(i)
		}
		if back != a {
			t.Fatal("indices round-trip failed")
		}
		// String never panics and is non-empty.
		if a.String() == "" {
			t.Fatal("empty string render")
		}
	})
}
