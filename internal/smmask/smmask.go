// Package smmask implements sets of streaming multiprocessors (SMs) as
// fixed-width bitmasks, mirroring the libsmctrl stream-mask mechanism the
// paper uses on NVIDIA GPUs (Bakita & Anderson, RTAS'23/'24).
//
// Masks support up to 256 SMs, which covers all current datacenter GPUs
// (A100: 108, H100: 132). The hardware facility allocates at a granularity
// of 2 SMs (one TPC); helpers that honor that granularity are provided, but
// the mask type itself is bit-exact.
package smmask

import (
	"fmt"
	"math/bits"
	"strings"
)

// MaxSMs is the largest SM index+1 representable by a Mask.
const MaxSMs = 256

// Granularity is the hardware partitioning granularity in SMs (one TPC).
const Granularity = 2

// Mask is a set of SM indices [0, MaxSMs).
type Mask [4]uint64

// Empty is the zero mask.
var Empty Mask

// Single returns a mask containing only SM i.
func Single(i int) Mask {
	var m Mask
	m.Set(i)
	return m
}

// Range returns a mask with SMs [lo, hi) set.
func Range(lo, hi int) Mask {
	var m Mask
	if lo < 0 || hi > MaxSMs || lo > hi {
		panic(fmt.Sprintf("smmask: invalid range [%d,%d)", lo, hi))
	}
	for i := lo; i < hi; i++ {
		m.Set(i)
	}
	return m
}

// Full returns a mask with the first n SMs set.
func Full(n int) Mask { return Range(0, n) }

// Set adds SM i to the mask.
func (m *Mask) Set(i int) {
	if i < 0 || i >= MaxSMs {
		panic(fmt.Sprintf("smmask: SM index %d out of range", i))
	}
	m[i>>6] |= 1 << (uint(i) & 63)
}

// Clear removes SM i from the mask.
func (m *Mask) Clear(i int) {
	if i < 0 || i >= MaxSMs {
		panic(fmt.Sprintf("smmask: SM index %d out of range", i))
	}
	m[i>>6] &^= 1 << (uint(i) & 63)
}

// Has reports whether SM i is in the mask.
func (m Mask) Has(i int) bool {
	if i < 0 || i >= MaxSMs {
		return false
	}
	return m[i>>6]&(1<<(uint(i)&63)) != 0
}

// Count returns the number of SMs in the mask.
func (m Mask) Count() int {
	return bits.OnesCount64(m[0]) + bits.OnesCount64(m[1]) +
		bits.OnesCount64(m[2]) + bits.OnesCount64(m[3])
}

// IsEmpty reports whether no SMs are set.
func (m Mask) IsEmpty() bool { return m == Empty }

// Union returns m ∪ o.
func (m Mask) Union(o Mask) Mask {
	return Mask{m[0] | o[0], m[1] | o[1], m[2] | o[2], m[3] | o[3]}
}

// Intersect returns m ∩ o.
func (m Mask) Intersect(o Mask) Mask {
	return Mask{m[0] & o[0], m[1] & o[1], m[2] & o[2], m[3] & o[3]}
}

// Diff returns m \ o.
func (m Mask) Diff(o Mask) Mask {
	return Mask{m[0] &^ o[0], m[1] &^ o[1], m[2] &^ o[2], m[3] &^ o[3]}
}

// Overlaps reports whether m and o share any SM.
func (m Mask) Overlaps(o Mask) bool {
	return m[0]&o[0] != 0 || m[1]&o[1] != 0 || m[2]&o[2] != 0 || m[3]&o[3] != 0
}

// SubsetOf reports whether every SM in m is also in o.
func (m Mask) SubsetOf(o Mask) bool { return m.Diff(o).IsEmpty() }

// ForEach calls fn for each SM index in ascending order.
func (m Mask) ForEach(fn func(i int)) {
	for w := 0; w < 4; w++ {
		word := m[w]
		for word != 0 {
			b := bits.TrailingZeros64(word)
			fn(w*64 + b)
			word &= word - 1
		}
	}
}

// Indices returns the sorted SM indices in the mask.
func (m Mask) Indices() []int {
	return m.AppendIndices(make([]int, 0, m.Count()))
}

// AppendIndices appends the sorted SM indices to dst, for callers that
// reuse a scratch buffer. The loop is open-coded rather than going
// through ForEach so no closure is allocated.
//
//bullet:hotpath
func (m Mask) AppendIndices(dst []int) []int {
	for w := 0; w < 4; w++ {
		word := m[w]
		for word != 0 {
			b := bits.TrailingZeros64(word)
			dst = append(dst, w*64+b)
			word &= word - 1
		}
	}
	return dst
}

// String renders the mask as compact index ranges, e.g. "0-53,60-61".
func (m Mask) String() string {
	if m.IsEmpty() {
		return "∅"
	}
	var sb strings.Builder
	idx := m.Indices()
	start, prev := idx[0], idx[0]
	flush := func() {
		if sb.Len() > 0 {
			sb.WriteByte(',')
		}
		if start == prev {
			fmt.Fprintf(&sb, "%d", start)
		} else {
			fmt.Fprintf(&sb, "%d-%d", start, prev)
		}
	}
	for _, i := range idx[1:] {
		if i == prev+1 {
			prev = i
			continue
		}
		flush()
		start, prev = i, i
	}
	flush()
	return sb.String()
}

// Aligned reports whether the mask respects the hardware granularity: SMs
// come in TPC pairs (2i, 2i+1) that are either both present or both absent.
func (m Mask) Aligned() bool {
	for w := 0; w < 4; w++ {
		even := m[w] & 0x5555555555555555
		odd := (m[w] >> 1) & 0x5555555555555555
		if even != odd {
			return false
		}
	}
	return true
}

// AlignUp returns the smallest aligned mask containing m: any half-occupied
// TPC pair becomes fully occupied.
func (m Mask) AlignUp() Mask {
	var out Mask
	for w := 0; w < 4; w++ {
		pairs := (m[w] | (m[w] >> 1)) & 0x5555555555555555
		out[w] = pairs | (pairs << 1)
	}
	return out
}

// Prefix returns a mask of the first n SMs present in m (ascending index
// order). If m has fewer than n SMs the whole mask is returned.
func (m Mask) Prefix(n int) Mask {
	var out Mask
	taken := 0
	m.ForEach(func(i int) {
		if taken < n {
			out.Set(i)
			taken++
		}
	})
	return out
}

// Partition splits the first total SMs into two disjoint aligned masks of
// a and b SMs (a+b must not exceed total). The a-mask takes the low SM
// indices and the b-mask the high ones, matching how the paper packs
// prefill low / decode high to minimise L2 interference.
func Partition(total, a, b int) (Mask, Mask) {
	if a < 0 || b < 0 || a+b > total || total > MaxSMs {
		panic(fmt.Sprintf("smmask: invalid partition total=%d a=%d b=%d", total, a, b))
	}
	return Range(0, a), Range(total-b, total)
}
