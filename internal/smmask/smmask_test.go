package smmask

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func randomMask(rng *rand.Rand) Mask {
	var m Mask
	n := rng.Intn(MaxSMs)
	for i := 0; i < n; i++ {
		m.Set(rng.Intn(MaxSMs))
	}
	return m
}

func TestSetClearHas(t *testing.T) {
	var m Mask
	for _, i := range []int{0, 1, 63, 64, 107, 255} {
		m.Set(i)
		if !m.Has(i) {
			t.Fatalf("SM %d not set", i)
		}
	}
	if m.Count() != 6 {
		t.Fatalf("count = %d, want 6", m.Count())
	}
	m.Clear(63)
	if m.Has(63) || m.Count() != 5 {
		t.Fatalf("clear failed: %v", m)
	}
}

func TestRangeAndFull(t *testing.T) {
	m := Range(10, 20)
	if m.Count() != 10 || !m.Has(10) || !m.Has(19) || m.Has(20) || m.Has(9) {
		t.Fatalf("Range(10,20) = %v", m)
	}
	if Full(108).Count() != 108 {
		t.Fatalf("Full(108).Count() = %d", Full(108).Count())
	}
}

func TestSetOps(t *testing.T) {
	a := Range(0, 60)
	b := Range(50, 108)
	if got := a.Intersect(b).Count(); got != 10 {
		t.Fatalf("intersect count = %d, want 10", got)
	}
	if got := a.Union(b).Count(); got != 108 {
		t.Fatalf("union count = %d, want 108", got)
	}
	if got := a.Diff(b).Count(); got != 50 {
		t.Fatalf("diff count = %d, want 50", got)
	}
	if !a.Overlaps(b) {
		t.Fatal("overlap not detected")
	}
	if a.Overlaps(Range(60, 108).Diff(b)) {
		t.Fatal("false overlap")
	}
}

func TestSubsetOf(t *testing.T) {
	if !Range(5, 10).SubsetOf(Range(0, 20)) {
		t.Fatal("subset not detected")
	}
	if Range(5, 25).SubsetOf(Range(0, 20)) {
		t.Fatal("non-subset reported as subset")
	}
	if !Empty.SubsetOf(Empty) {
		t.Fatal("empty not subset of empty")
	}
}

func TestIndicesAndForEach(t *testing.T) {
	m := Single(3).Union(Single(100)).Union(Single(64))
	idx := m.Indices()
	want := []int{3, 64, 100}
	if len(idx) != 3 {
		t.Fatalf("indices = %v", idx)
	}
	for i := range want {
		if idx[i] != want[i] {
			t.Fatalf("indices = %v, want %v", idx, want)
		}
	}
}

func TestString(t *testing.T) {
	cases := []struct {
		m    Mask
		want string
	}{
		{Empty, "∅"},
		{Single(5), "5"},
		{Range(0, 4), "0-3"},
		{Range(0, 2).Union(Range(6, 8)), "0-1,6-7"},
	}
	for _, c := range cases {
		if got := c.m.String(); got != c.want {
			t.Errorf("String(%v) = %q, want %q", c.m.Indices(), got, c.want)
		}
	}
}

func TestAligned(t *testing.T) {
	if !Range(0, 108).Aligned() {
		t.Fatal("full A100 mask should be aligned")
	}
	if Range(0, 7).Aligned() {
		t.Fatal("odd-sized range reported aligned")
	}
	if !Range(0, 7).AlignUp().Aligned() {
		t.Fatal("AlignUp did not align")
	}
	if got := Range(0, 7).AlignUp().Count(); got != 8 {
		t.Fatalf("AlignUp count = %d, want 8", got)
	}
}

func TestPrefix(t *testing.T) {
	m := Range(10, 30)
	p := m.Prefix(5)
	if p.Count() != 5 || !p.SubsetOf(m) || !p.Has(10) || !p.Has(14) || p.Has(15) {
		t.Fatalf("Prefix = %v", p.Indices())
	}
	if got := m.Prefix(100); got != m {
		t.Fatal("oversized prefix should return the whole mask")
	}
}

func TestPartition(t *testing.T) {
	p, d := Partition(108, 60, 48)
	if p.Count() != 60 || d.Count() != 48 {
		t.Fatalf("partition counts = %d,%d", p.Count(), d.Count())
	}
	if p.Overlaps(d) {
		t.Fatal("partition halves overlap")
	}
	if !p.Union(d).SubsetOf(Full(108)) {
		t.Fatal("partition exceeds GPU")
	}
	// Non-exhaustive partition leaves a gap in the middle.
	p, d = Partition(108, 30, 30)
	if p.Overlaps(d) || p.Count() != 30 || d.Count() != 30 {
		t.Fatal("partial partition wrong")
	}
}

func TestPartitionPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic for oversubscribed partition")
		}
	}()
	Partition(108, 80, 80)
}

// Properties.

func TestPropertyUnionCount(t *testing.T) {
	f := func(seedA, seedB int64) bool {
		a := randomMask(rand.New(rand.NewSource(seedA)))
		b := randomMask(rand.New(rand.NewSource(seedB)))
		// |A ∪ B| = |A| + |B| - |A ∩ B|
		return a.Union(b).Count() == a.Count()+b.Count()-a.Intersect(b).Count()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestPropertyDeMorgan(t *testing.T) {
	u := Full(MaxSMs)
	f := func(seedA, seedB int64) bool {
		a := randomMask(rand.New(rand.NewSource(seedA)))
		b := randomMask(rand.New(rand.NewSource(seedB)))
		// ¬(A ∪ B) = ¬A ∩ ¬B  within the universe u
		left := u.Diff(a.Union(b))
		right := u.Diff(a).Intersect(u.Diff(b))
		return left == right
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestPropertyDiffDisjoint(t *testing.T) {
	f := func(seedA, seedB int64) bool {
		a := randomMask(rand.New(rand.NewSource(seedA)))
		b := randomMask(rand.New(rand.NewSource(seedB)))
		return !a.Diff(b).Overlaps(b)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestPropertyAlignUpContains(t *testing.T) {
	f := func(seed int64) bool {
		m := randomMask(rand.New(rand.NewSource(seed)))
		up := m.AlignUp()
		return m.SubsetOf(up) && up.Aligned() && up.Count() <= m.Count()*2
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestPropertyIndicesRoundTrip(t *testing.T) {
	f := func(seed int64) bool {
		m := randomMask(rand.New(rand.NewSource(seed)))
		var back Mask
		for _, i := range m.Indices() {
			back.Set(i)
		}
		return back == m
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkCount(b *testing.B) {
	m := Full(108)
	for i := 0; i < b.N; i++ {
		_ = m.Count()
	}
}

func BenchmarkUnion(b *testing.B) {
	x, y := Range(0, 60), Range(50, 108)
	for i := 0; i < b.N; i++ {
		_ = x.Union(y)
	}
}
