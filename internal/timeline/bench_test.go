package timeline

import (
	"io"
	"testing"

	"repro/internal/units"
)

// BenchmarkDisabledCallSite measures the guarded hot-path pattern used
// throughout the stack: `if rec != nil { rec.Span(...) }`. With a nil
// recorder this must compile down to a pointer test — no variadic slice
// allocation, no call.
func BenchmarkDisabledCallSite(b *testing.B) {
	var rec *Recorder
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if rec != nil {
			rec.Span("gpu", "attn", 0, 1, F("gflops", 312), I("sms", 108))
		}
	}
}

// BenchmarkDisabledDirectCall measures an unguarded call on a nil
// recorder — the slower (but still allocation-bounded) fallback for cold
// call sites that skip the guard.
func BenchmarkDisabledDirectCall(b *testing.B) {
	var rec *Recorder
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		rec.Span("gpu", "attn", 0, 1, F("gflops", 312), I("sms", 108))
	}
}

// BenchmarkEnabledSpan measures the recording cost when tracing is on.
func BenchmarkEnabledSpan(b *testing.B) {
	rec := New(0)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		rec.Span("gpu", "attn", units.Seconds(float64(i)), units.Seconds(float64(i)+1),
			F("gflops", 312), I("sms", 108))
	}
}

// BenchmarkWriteChrome measures export throughput over a realistic mix.
func BenchmarkWriteChrome(b *testing.B) {
	rec := New(0)
	for i := 0; i < 10_000; i++ {
		t := units.Seconds(float64(i)) / 1000
		rec.Span("stream00", "kernel", t, t+0.0005, F("gflops", 250), I("sms", 54))
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := rec.WriteChrome(io.Discard); err != nil {
			b.Fatal(err)
		}
	}
}
