// Chrome trace-event JSON exporter. The writer emits every byte by hand
// — no encoding/json, no maps in the output path — so field order,
// number formatting and event order are fully deterministic: the same
// seeded run exports a bit-identical file every time, which is what lets
// ci.sh diff traces across double runs.
//
// The format is the Trace Event Format consumed by chrome://tracing and
// https://ui.perfetto.dev: a JSON array of event objects with phases
// "M" (metadata), "X" (complete span), "i" (instant), "C" (counter) and
// "b"/"e" (async span begin/end). Timestamps are microseconds.
package timeline

import (
	"bufio"
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"unicode/utf8"

	"repro/internal/units"
)

// rootProcName labels the unscoped process row in the exported trace.
const rootProcName = "main"

// WriteChrome exports the recorder's events as a Chrome trace-event JSON
// array. A nil or empty recorder writes an empty (still valid) trace. It
// returns an error — naming the offending event — if any timestamp,
// duration or numeric argument is NaN or infinite, or a counter carries
// a non-numeric argument.
func (r *Recorder) WriteChrome(w io.Writer) error {
	return WriteChrome(w, r.Events())
}

// WriteChrome exports events (already in deterministic order — use
// Recorder.Events) as a Chrome trace-event JSON array.
func WriteChrome(w io.Writer, events []Event) error {
	cw := &chromeWriter{w: bufio.NewWriter(w)}
	cw.assignRows(events)
	cw.raw("[")
	cw.writeMetadata()
	for i := range events {
		if err := cw.writeEvent(&events[i]); err != nil {
			return err
		}
	}
	cw.raw("\n]\n")
	if cw.err != nil {
		return cw.err
	}
	return cw.w.Flush()
}

// chromeWriter holds the output stream and the deterministic pid/tid
// assignment derived from the event set.
type chromeWriter struct {
	w          *bufio.Writer
	err        error
	first      bool // next object is the first in the array
	firstField bool // next field is the first in the current object

	procs []string       // sorted process names, pid = index+1
	pids  map[string]int // proc -> pid
	lanes []procLanes    // per proc, sorted lane names
	tids  map[string]int // proc "\x00" lane -> tid
}

type procLanes struct {
	proc  string
	lanes []string
}

// assignRows derives pids and tids: processes sorted by name (the root
// "" first, shown as "main"), lanes sorted within each process. Maps are
// used only as sets; every iteration below walks sorted slices.
func (cw *chromeWriter) assignRows(events []Event) {
	cw.first = true
	procSet := map[string]bool{}
	laneSet := map[string]map[string]bool{}
	for i := range events {
		e := &events[i]
		procSet[e.Proc] = true
		if laneSet[e.Proc] == nil {
			laneSet[e.Proc] = map[string]bool{}
		}
		laneSet[e.Proc][e.Lane] = true
	}
	procs := make([]string, 0, len(procSet))
	for p := range procSet {
		procs = append(procs, p)
	}
	sort.Strings(procs)
	cw.procs = procs
	cw.pids = make(map[string]int, len(cw.procs))
	cw.tids = map[string]int{}
	for i, p := range cw.procs {
		cw.pids[p] = i + 1
		lanes := make([]string, 0, len(laneSet[p]))
		for l := range laneSet[p] {
			lanes = append(lanes, l)
		}
		sort.Strings(lanes)
		cw.lanes = append(cw.lanes, procLanes{proc: p, lanes: lanes})
		for j, l := range lanes {
			cw.tids[p+"\x00"+l] = j + 1
		}
	}
}

// writeMetadata emits process_name / thread_name rows so Perfetto labels
// every track.
func (cw *chromeWriter) writeMetadata() {
	for pi, p := range cw.procs {
		display := p
		if display == "" {
			display = rootProcName
		}
		cw.open()
		cw.str("name", "process_name")
		cw.str("ph", "M")
		cw.num("pid", pi+1)
		cw.nameArgs(display)
		cw.close()
		for li, l := range cw.lanes[pi].lanes {
			cw.open()
			cw.str("name", "thread_name")
			cw.str("ph", "M")
			cw.num("pid", pi+1)
			cw.num("tid", li+1)
			cw.nameArgs(l)
			cw.close()
		}
	}
}

// writeEvent emits one recorded event as one (or, for async spans, two)
// trace objects.
func (cw *chromeWriter) writeEvent(e *Event) error {
	if err := checkFinite(e); err != nil {
		return err
	}
	pid := cw.pids[e.Proc]
	tid := cw.tids[e.Proc+"\x00"+e.Lane]
	ts := micros(e.Start)
	switch e.Kind {
	case KindSpan:
		cw.open()
		cw.str("name", e.Name)
		cw.str("ph", "X")
		cw.flt("ts", ts)
		cw.flt("dur", micros(e.End)-ts)
		cw.num("pid", pid)
		cw.num("tid", tid)
		cw.args(e.Args)
		cw.close()
	case KindInstant:
		cw.open()
		cw.str("name", e.Name)
		cw.str("ph", "i")
		cw.str("s", "t") // thread-scoped tick mark
		cw.flt("ts", ts)
		cw.num("pid", pid)
		cw.num("tid", tid)
		cw.args(e.Args)
		cw.close()
	case KindCounter:
		for _, a := range e.Args {
			if a.Kind != ArgFloat && a.Kind != ArgInt {
				return fmt.Errorf("timeline: counter %s/%s arg %q is not numeric", e.Lane, e.Name, a.Key)
			}
		}
		cw.open()
		cw.str("name", e.Name)
		cw.str("ph", "C")
		cw.flt("ts", ts)
		cw.num("pid", pid)
		cw.num("tid", tid)
		cw.args(e.Args)
		cw.close()
	case KindAsync:
		cw.open()
		cw.str("name", e.Name)
		cw.str("cat", e.Lane)
		cw.str("ph", "b")
		cw.str("id", e.ID)
		cw.flt("ts", ts)
		cw.num("pid", pid)
		cw.num("tid", tid)
		cw.args(e.Args)
		cw.close()
		cw.open()
		cw.str("name", e.Name)
		cw.str("cat", e.Lane)
		cw.str("ph", "e")
		cw.str("id", e.ID)
		cw.flt("ts", micros(e.End))
		cw.num("pid", pid)
		cw.num("tid", tid)
		cw.close()
	default:
		return fmt.Errorf("timeline: unknown event kind %d (%s/%s)", e.Kind, e.Lane, e.Name)
	}
	return cw.err
}

// checkFinite rejects NaN/Inf timestamps and numeric arguments: a
// non-finite value in a trace is always an upstream bug, and Perfetto's
// JSON parser would choke on it anyway.
func checkFinite(e *Event) error {
	if !finite(e.Start) || !finite(e.End) {
		return fmt.Errorf("timeline: event %s/%s has non-finite time [%v, %v]", e.Lane, e.Name, e.Start, e.End)
	}
	for _, a := range e.Args {
		if a.Kind == ArgFloat && (math.IsNaN(a.F) || math.IsInf(a.F, 0)) {
			return fmt.Errorf("timeline: event %s/%s arg %q is non-finite (%v)", e.Lane, e.Name, a.Key, a.F)
		}
	}
	return nil
}

func finite(t units.Seconds) bool { return !units.IsNaN(t) && !units.IsInf(t, 0) }

// micros converts virtual seconds to trace microseconds.
func micros(t units.Seconds) float64 { return t.Float() * 1e6 }

// --- low-level deterministic JSON emission ---

// open begins a new event object (with the array separator as needed).
func (cw *chromeWriter) open() {
	if cw.first {
		cw.raw("\n")
		cw.first = false
	} else {
		cw.raw(",\n")
	}
	cw.raw("{")
	cw.firstField = true
}

func (cw *chromeWriter) close() { cw.raw("}") }

func (cw *chromeWriter) key(k string) {
	if !cw.firstField {
		cw.raw(",")
	}
	cw.firstField = false
	cw.jsonString(k)
	cw.raw(":")
}

func (cw *chromeWriter) str(k, v string) {
	cw.key(k)
	cw.jsonString(v)
}

func (cw *chromeWriter) num(k string, v int) {
	cw.key(k)
	cw.raw(strconv.Itoa(v))
}

func (cw *chromeWriter) flt(k string, v float64) {
	cw.key(k)
	cw.raw(formatFloat(v))
}

// nameArgs emits the `"args":{"name":...}` object of a metadata row.
func (cw *chromeWriter) nameArgs(name string) {
	cw.key("args")
	cw.raw("{")
	cw.jsonString("name")
	cw.raw(":")
	cw.jsonString(name)
	cw.raw("}")
}

// args emits the args object preserving call-site order.
func (cw *chromeWriter) args(args []Arg) {
	if len(args) == 0 {
		return
	}
	cw.key("args")
	cw.raw("{")
	for i, a := range args {
		if i > 0 {
			cw.raw(",")
		}
		cw.jsonString(a.Key)
		cw.raw(":")
		switch a.Kind {
		case ArgFloat:
			cw.raw(formatFloat(a.F))
		case ArgInt:
			cw.raw(strconv.FormatInt(a.I, 10))
		case ArgString:
			cw.jsonString(a.S)
		case ArgBool:
			if a.B {
				cw.raw("true")
			} else {
				cw.raw("false")
			}
		}
	}
	cw.raw("}")
}

// formatFloat renders a finite float deterministically in shortest
// round-trip form, using fixed notation for ordinary magnitudes so
// microsecond timestamps read as plain integers ('g' would print
// 1500000 as "1.5e+06"). Both forms are valid JSON. Callers must have
// rejected NaN/Inf.
func formatFloat(v float64) string {
	if math.Abs(v) < 1e15 {
		return strconv.FormatFloat(v, 'f', -1, 64)
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

func (cw *chromeWriter) raw(s string) {
	if cw.err != nil {
		return
	}
	_, cw.err = cw.w.WriteString(s)
}

// jsonString writes a JSON string literal with full escaping: quotes and
// backslashes, control characters as \u00XX, and invalid UTF-8 replaced
// by U+FFFD (matching encoding/json), so arbitrary workload request IDs
// and kernel names always yield valid JSON.
func (cw *chromeWriter) jsonString(s string) {
	if cw.err != nil {
		return
	}
	buf := make([]byte, 0, len(s)+2)
	buf = append(buf, '"')
	for i := 0; i < len(s); {
		c := s[i]
		if c < utf8.RuneSelf {
			switch {
			case c == '"':
				buf = append(buf, '\\', '"')
			case c == '\\':
				buf = append(buf, '\\', '\\')
			case c == '\n':
				buf = append(buf, '\\', 'n')
			case c == '\r':
				buf = append(buf, '\\', 'r')
			case c == '\t':
				buf = append(buf, '\\', 't')
			case c < 0x20:
				buf = append(buf, []byte(fmt.Sprintf("\\u%04x", c))...)
			default:
				buf = append(buf, c)
			}
			i++
			continue
		}
		r, size := utf8.DecodeRuneInString(s[i:])
		if r == utf8.RuneError && size == 1 {
			buf = append(buf, []byte("�")...)
			i++
			continue
		}
		buf = append(buf, s[i:i+size]...)
		i += size
	}
	buf = append(buf, '"')
	_, cw.err = cw.w.Write(buf)
}
