package timeline

import (
	"bytes"
	"encoding/json"
	"math"
	"testing"

	"repro/internal/units"
)

// FuzzWriteChrome throws arbitrary lane/name/id/arg strings (the shapes
// workload request IDs and kernel tags take) and arbitrary floats at the
// exporter. Contract: non-finite times or float args yield an error and
// nothing else does; every successful export is valid JSON.
func FuzzWriteChrome(f *testing.F) {
	f.Add("gpu", "attn", "req-1", "key", "val", 0.5, 1.5, 0.25)
	f.Add("la\"ne", "na\\me", "id\n", "k\tey", "v\x00al", 0.0, 0.0, -1.0)
	f.Add("π-lane", "名前", "\xff\xfe", "ключ", "värde", 1e-9, 1e9, math.Pi)
	f.Add("", "", "", "", "", -2.0, -1.0, 0.0)
	f.Add("nan", "inf", "x", "y", "z", 1.0, 2.0, math.Inf(1))
	f.Fuzz(func(t *testing.T, lane, name, id, key, sval string, start, end, fval float64) {
		if end < start {
			start, end = end, start
		}
		if math.IsNaN(start) || math.IsNaN(end) {
			// An inverted-span panic is the recorder's contract for NaN
			// comparisons resolving oddly; skip — the writer-level NaN
			// rejection is covered via fval below and the unit tests.
			start, end = 0, 1
		}
		r := New(0)
		r.Span(lane, name, units.Seconds(start), units.Seconds(end), F(key, fval), S(key, sval))
		r.Instant(lane, name, units.Seconds(start), S("id", id))
		r.AsyncSpan(lane, name, id, units.Seconds(start), units.Seconds(end), B("b", true))
		r.Counter(lane, name, units.Seconds(end), F(key, 1), I("n", 3))

		var buf bytes.Buffer
		err := r.WriteChrome(&buf)
		bad := math.IsInf(start, 0) || math.IsInf(end, 0) ||
			math.IsNaN(fval) || math.IsInf(fval, 0)
		if bad {
			if err == nil {
				t.Fatalf("non-finite input accepted: start=%v end=%v fval=%v", start, end, fval)
			}
			return
		}
		if err != nil {
			t.Fatalf("finite input rejected: %v (start=%v end=%v fval=%v)", err, start, end, fval)
		}
		if !json.Valid(buf.Bytes()) {
			t.Fatalf("invalid JSON for lane=%q name=%q id=%q key=%q sval=%q:\n%s",
				lane, name, id, key, sval, buf.String())
		}
	})
}
