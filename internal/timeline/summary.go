// Compact text summary of a recorded timeline: per-lane event counts,
// span busy time and async correlation counts, in deterministic
// (process, lane) order — the CLI companion to the Chrome export.
package timeline

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/units"
)

// laneStats accumulates one (proc, lane) row of the summary.
type laneStats struct {
	events   int
	spans    int
	busy     units.Seconds
	instants int
	counters int
	asyncIDs map[string]bool
}

// Summary renders a compact text overview of the recorder's contents,
// including the drop count when the capacity cap was hit. A nil recorder
// summarises as empty.
func (r *Recorder) Summary() string {
	s := Summarize(r.Events())
	if d := r.Dropped(); d > 0 {
		s += fmt.Sprintf("  (%d events dropped past the %d-event cap)\n", d, r.st.max)
	}
	return s
}

// Summarize renders the per-lane overview of an event set.
func Summarize(events []Event) string {
	if len(events) == 0 {
		return "timeline: empty\n"
	}
	type key struct{ proc, lane string }
	stats := map[key]*laneStats{}
	lo, hi := events[0].Start, events[0].End
	for i := range events {
		e := &events[i]
		if e.Start < lo {
			lo = e.Start
		}
		if e.End > hi {
			hi = e.End
		}
		k := key{e.Proc, e.Lane}
		st := stats[k]
		if st == nil {
			st = &laneStats{asyncIDs: map[string]bool{}}
			stats[k] = st
		}
		st.events++
		switch e.Kind {
		case KindSpan:
			st.spans++
			st.busy += e.Duration()
		case KindAsync:
			st.spans++
			st.busy += e.Duration()
			st.asyncIDs[e.ID] = true
		case KindInstant:
			st.instants++
		case KindCounter:
			st.counters++
		}
	}
	keys := make([]key, 0, len(stats))
	for k := range stats {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i].proc != keys[j].proc {
			return keys[i].proc < keys[j].proc
		}
		return keys[i].lane < keys[j].lane
	})

	var sb strings.Builder
	fmt.Fprintf(&sb, "timeline: %d events across %d lanes, %.3fs–%.3fs\n",
		len(events), len(keys), lo.Float(), hi.Float())
	prevProc, shownProc := "", false
	for _, k := range keys {
		if k.proc != prevProc || !shownProc {
			name := k.proc
			if name == "" {
				name = rootProcName
			}
			fmt.Fprintf(&sb, "  proc %s\n", name)
			prevProc, shownProc = k.proc, true
		}
		st := stats[k]
		fmt.Fprintf(&sb, "    lane %-12s %6d events", k.lane, st.events)
		if st.spans > 0 {
			fmt.Fprintf(&sb, ", %5d spans busy %8.3fs", st.spans, st.busy.Float())
		}
		if n := len(st.asyncIDs); n > 0 {
			fmt.Fprintf(&sb, " over %d ids", n)
		}
		if st.instants > 0 {
			fmt.Fprintf(&sb, ", %d instants", st.instants)
		}
		if st.counters > 0 {
			fmt.Fprintf(&sb, ", %d samples", st.counters)
		}
		sb.WriteByte('\n')
	}
	return sb.String()
}
