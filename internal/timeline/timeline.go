// Package timeline is the deterministic observability layer of the
// reproduction: a zero-dependency, virtual-time span/event recorder that
// the GPU simulator, the engines, the resource manager and the cluster
// router thread their activity through (DESIGN.md, "Observability").
//
// The recorder obeys the repository's determinism contract end to end:
// events carry (virtual time, insertion sequence) and no wall-clock or
// map-ordered state, so the exported Chrome trace of a seeded run is
// byte-identical across runs — bit-for-bit, even under fault injection.
//
// Recording is free when disabled: every method is safe on a nil
// *Recorder and returns immediately. Hot paths additionally guard call
// sites with `if rec != nil` so the variadic argument slice is never
// materialised (see BenchmarkDisabledCallSite).
package timeline

import (
	"fmt"
	"sort"

	"repro/internal/units"
)

// Kind classifies an event.
type Kind uint8

const (
	// KindSpan is a complete interval on a lane ([Start, End]).
	KindSpan Kind = iota
	// KindInstant is a point event (End == Start).
	KindInstant
	// KindCounter is a sampled set of numeric series values at a point.
	KindCounter
	// KindAsync is an interval correlated by ID across lanes — the
	// request-lifecycle phases use one ID per request.
	KindAsync
)

// String names the kind for summaries and diagnostics.
func (k Kind) String() string {
	switch k {
	case KindSpan:
		return "span"
	case KindInstant:
		return "instant"
	case KindCounter:
		return "counter"
	case KindAsync:
		return "async"
	}
	return fmt.Sprintf("kind(%d)", uint8(k))
}

// ArgKind discriminates the Arg payload.
type ArgKind uint8

const (
	// ArgFloat carries a float64 value.
	ArgFloat ArgKind = iota
	// ArgInt carries an int64 value.
	ArgInt
	// ArgString carries a string value.
	ArgString
	// ArgBool carries a bool value.
	ArgBool
)

// Arg is one key/value annotation on an event. It is a tagged union
// rather than a map so argument order — and therefore the exported JSON —
// is exactly the order the emitting call site wrote.
type Arg struct {
	Key  string
	Kind ArgKind
	F    float64
	I    int64
	S    string
	B    bool
}

// F makes a float argument.
func F(key string, v float64) Arg { return Arg{Key: key, Kind: ArgFloat, F: v} }

// I makes an integer argument.
func I(key string, v int) Arg { return Arg{Key: key, Kind: ArgInt, I: int64(v)} }

// S makes a string argument.
func S(key, v string) Arg { return Arg{Key: key, Kind: ArgString, S: v} }

// B makes a boolean argument.
func B(key string, v bool) Arg { return Arg{Key: key, Kind: ArgBool, B: v} }

// Event is one recorded occurrence. Times are virtual-clock seconds.
type Event struct {
	Kind Kind
	// Proc groups lanes into a process row (a cluster replica); empty
	// means the main process.
	Proc string
	// Lane is the track within the process ("stream03", "prefill", ...).
	Lane string
	// Name labels the event ("attn-prefill", "repartition", ...).
	Name string
	// ID correlates KindAsync phases; empty otherwise.
	ID    string
	Start units.Seconds
	// End equals Start for instants and counters.
	End units.Seconds
	// Seq is the global insertion sequence — the determinism tie-break
	// for simultaneous events, mirroring the sim event queue.
	Seq  uint64
	Args []Arg
	// argOff/argN locate this event's args inside the recorder's shared
	// arena while the event sits in internal storage; Events()
	// materializes them into Args. Zero-valued on externally constructed
	// events, whose Args field is used directly.
	argOff int
	argN   int
}

// Duration returns End - Start (zero for instants and counters).
func (e Event) Duration() units.Seconds { return e.End - e.Start }

// DefaultMaxEvents caps a recorder when New is given a non-positive
// limit. Past the cap events are counted as dropped, deterministically.
const DefaultMaxEvents = 2_000_000

// state is the shared storage behind a recorder and all its Scoped
// views. Single-threaded by contract: the recorder is driven from the
// simulation event loop, like every other core component.
type state struct {
	max     int
	seq     uint64
	dropped int
	events  []Event
	// argbuf is the shared argument arena: add copies the caller's
	// variadic args element-wise into it, so the variadic array never
	// escapes and every recording call site — enabled or disabled —
	// builds its args on the stack.
	argbuf []Arg
}

// Recorder collects events. The zero *Recorder (nil) is the disabled
// recorder: every method is a no-op returning zero values.
type Recorder struct {
	st   *state
	proc string
}

// New creates a recorder holding at most maxEvents events (non-positive
// means DefaultMaxEvents).
func New(maxEvents int) *Recorder {
	if maxEvents <= 0 {
		maxEvents = DefaultMaxEvents
	}
	return &Recorder{st: &state{max: maxEvents}}
}

// Enabled reports whether events are being recorded.
func (r *Recorder) Enabled() bool { return r != nil }

// Scoped returns a view of the same recorder that tags every event with
// a process name — how the cluster router attributes spans to replicas.
// Scoped on a nil recorder returns nil, so the disabled fast path
// propagates through attachment chains.
func (r *Recorder) Scoped(proc string) *Recorder {
	if r == nil {
		return nil
	}
	return &Recorder{st: r.st, proc: proc}
}

// Proc returns the process tag of this view ("" for the root).
func (r *Recorder) Proc() string {
	if r == nil {
		return ""
	}
	return r.proc
}

// add appends one event, assigning its sequence number. args is copied
// element-wise into the arena rather than retained, which keeps this
// function's parameters non-escaping — the property the hot-path
// allocation contract (DESIGN.md §13) depends on.
//
//bullet:hotpath
func (r *Recorder) add(e Event, args []Arg) {
	if r == nil {
		return
	}
	st := r.st
	if len(st.events) >= st.max {
		st.dropped++
		return
	}
	e.Proc = r.proc
	e.Seq = st.seq
	st.seq++
	e.argOff = len(st.argbuf)
	e.argN = len(args)
	for i := range args {
		//lint:ignore hotalloc arena growth is amortized; steady state appends into reserved capacity
		st.argbuf = append(st.argbuf, args[i])
	}
	//lint:ignore hotalloc event buffer growth is amortized and bounded by max
	st.events = append(st.events, e)
}

// Span records a complete interval on a lane. End must not precede
// Start; non-finite times are accepted here and rejected by the
// exporters (so a poisoned value fails loudly at the boundary with
// context rather than corrupting the trace).
func (r *Recorder) Span(lane, name string, start, end units.Seconds, args ...Arg) {
	if r == nil {
		return
	}
	if end < start {
		panic(fmt.Sprintf("timeline: span %s/%s ends at %v before start %v", lane, name, end, start))
	}
	r.add(Event{Kind: KindSpan, Lane: lane, Name: name, Start: start, End: end}, args)
}

// Instant records a point event on a lane.
func (r *Recorder) Instant(lane, name string, t units.Seconds, args ...Arg) {
	if r == nil {
		return
	}
	r.add(Event{Kind: KindInstant, Lane: lane, Name: name, Start: t, End: t}, args)
}

// Counter records sampled series values at a point; every arg must be
// numeric (ArgFloat or ArgInt) — the exporters reject anything else.
func (r *Recorder) Counter(lane, name string, t units.Seconds, args ...Arg) {
	if r == nil {
		return
	}
	r.add(Event{Kind: KindCounter, Lane: lane, Name: name, Start: t, End: t}, args)
}

// AsyncSpan records an ID-correlated interval: the phases of one request
// share an ID and render as one per-request track. End must not precede
// Start.
func (r *Recorder) AsyncSpan(lane, name, id string, start, end units.Seconds, args ...Arg) {
	if r == nil {
		return
	}
	if end < start {
		panic(fmt.Sprintf("timeline: async span %s/%s[%s] ends at %v before start %v", lane, name, id, end, start))
	}
	r.add(Event{Kind: KindAsync, Lane: lane, Name: name, ID: id, Start: start, End: end}, args)
}

// Len returns the number of recorded events (across all scoped views).
func (r *Recorder) Len() int {
	if r == nil {
		return 0
	}
	return len(r.st.events)
}

// Dropped returns how many events were discarded past the capacity cap.
func (r *Recorder) Dropped() int {
	if r == nil {
		return 0
	}
	return r.st.dropped
}

// Events returns a copy of all recorded events sorted by (Start, Seq):
// nondecreasing in time, FIFO among simultaneous events — the same
// ordering contract as the sim event queue. Lifecycle spans emitted
// retrospectively (at request completion, with earlier start times) are
// thereby folded into timeline order.
func (r *Recorder) Events() []Event {
	if r == nil {
		return nil
	}
	out := append([]Event(nil), r.st.events...)
	for i := range out {
		if out[i].argN > 0 {
			out[i].Args = r.st.argbuf[out[i].argOff : out[i].argOff+out[i].argN]
		}
	}
	sort.SliceStable(out, func(i, j int) bool {
		if out[i].Start < out[j].Start {
			return true
		}
		if out[j].Start < out[i].Start {
			return false
		}
		return out[i].Seq < out[j].Seq
	})
	return out
}
