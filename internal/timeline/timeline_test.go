package timeline

import (
	"bytes"
	"encoding/json"
	"math"
	"strings"
	"testing"
	"testing/quick"

	"repro/internal/units"
)

// TestNilRecorderIsSafe: the disabled recorder accepts every call and
// exports an empty, valid trace — the contract the whole stack relies on
// to make tracing free when off.
func TestNilRecorderIsSafe(t *testing.T) {
	var r *Recorder
	if r.Enabled() {
		t.Fatal("nil recorder claims to be enabled")
	}
	r.Span("lane", "x", 0, 1, F("a", 1))
	r.Instant("lane", "x", 0)
	r.Counter("lane", "x", 0, F("a", 1))
	r.AsyncSpan("lane", "x", "id", 0, 1)
	if r.Len() != 0 || r.Dropped() != 0 || r.Events() != nil || r.Proc() != "" {
		t.Fatalf("nil recorder leaked state: len=%d dropped=%d", r.Len(), r.Dropped())
	}
	if s := r.Scoped("replica0"); s != nil {
		t.Fatal("Scoped on nil recorder is not nil")
	}
	var buf bytes.Buffer
	if err := r.WriteChrome(&buf); err != nil {
		t.Fatalf("nil WriteChrome: %v", err)
	}
	if !json.Valid(buf.Bytes()) {
		t.Fatalf("nil trace is invalid JSON: %q", buf.String())
	}
	if got := r.Summary(); !strings.Contains(got, "empty") {
		t.Fatalf("nil summary = %q", got)
	}
}

// TestEventsSortedProperty: whatever order spans are recorded in —
// including the retrospective lifecycle emission pattern, where spans
// with earlier start times arrive late — Events() is nondecreasing in
// (Start, Seq), Seq reflects insertion order, and nothing is lost below
// the cap. This is the (time, seq) invariant of the issue, checked with
// testing/quick over randomized insertion orders.
func TestEventsSortedProperty(t *testing.T) {
	prop := func(raw []struct {
		Start uint16
		Dur   uint16
		Lane  uint8
	}) bool {
		r := New(0)
		for _, v := range raw {
			start := units.Seconds(float64(v.Start) / 7)
			end := start + units.Seconds(float64(v.Dur)/11)
			lane := []string{"gpu", "prefill", "decode", "sched"}[int(v.Lane)%4]
			r.Span(lane, "k", start, end)
		}
		evs := r.Events()
		if len(evs) != len(raw) {
			return false
		}
		for i := 1; i < len(evs); i++ {
			if evs[i].Start < evs[i-1].Start {
				return false
			}
			if !(evs[i-1].Start < evs[i].Start) && evs[i].Seq <= evs[i-1].Seq {
				return false // simultaneous events must keep FIFO seq order
			}
		}
		// Seq is the raw insertion order.
		seen := map[uint64]bool{}
		for _, e := range evs {
			if e.Seq >= uint64(len(raw)) || seen[e.Seq] {
				return false
			}
			seen[e.Seq] = true
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// TestScopedViewsShareOneSequence: scoped recorders tag their process
// but share storage, capacity and the (time, seq) ordering domain.
func TestScopedViewsShareOneSequence(t *testing.T) {
	root := New(0)
	rep0 := root.Scoped("replica0")
	rep1 := root.Scoped("replica1")
	root.Instant("cluster", "crash", 1)
	rep0.Instant("gpu", "a", 1)
	rep1.Instant("gpu", "b", 1)
	if root.Len() != 3 {
		t.Fatalf("shared len = %d, want 3", root.Len())
	}
	evs := root.Events()
	wantProcs := []string{"", "replica0", "replica1"}
	for i, e := range evs {
		if e.Proc != wantProcs[i] {
			t.Fatalf("event %d proc %q, want %q (FIFO among simultaneous)", i, e.Proc, wantProcs[i])
		}
		if e.Seq != uint64(i) {
			t.Fatalf("event %d seq %d", i, e.Seq)
		}
	}
	if rep0.Proc() != "replica0" {
		t.Fatalf("Proc() = %q", rep0.Proc())
	}
}

// TestCapacityDropsDeterministically: past the cap events are dropped
// and counted; the surviving prefix is exactly the first max insertions.
func TestCapacityDropsDeterministically(t *testing.T) {
	r := New(3)
	for i := 0; i < 10; i++ {
		r.Instant("lane", "e", units.Seconds(float64(i)))
	}
	if r.Len() != 3 || r.Dropped() != 7 {
		t.Fatalf("len=%d dropped=%d, want 3/7", r.Len(), r.Dropped())
	}
	for i, e := range r.Events() {
		if e.Seq != uint64(i) {
			t.Fatalf("survivor %d has seq %d", i, e.Seq)
		}
	}
	if s := r.Summary(); !strings.Contains(s, "7 events dropped") {
		t.Fatalf("summary does not report drops:\n%s", s)
	}
}

// TestInvertedSpanPanics: a span ending before it starts is a
// bookkeeping bug and must fail loudly.
func TestInvertedSpanPanics(t *testing.T) {
	for _, async := range []bool{false, true} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("inverted span (async=%v) accepted", async)
				}
			}()
			r := New(0)
			if async {
				r.AsyncSpan("lane", "x", "id", 2, 1)
			} else {
				r.Span("lane", "x", 2, 1)
			}
		}()
	}
}

// TestWriteChromeGolden pins the exact bytes of a small export: field
// order, number formatting, pid/tid assignment and metadata rows. Any
// change to this output is a determinism-contract change and must be
// deliberate.
func TestWriteChromeGolden(t *testing.T) {
	r := New(0)
	// Times are binary-exact fractions so ts/dur microseconds print as
	// integers in shortest-round-trip form.
	r.Span("gpu", "attn", 0.5, 1.75, I("sms", 54), F("waveIdle", 0.25))
	r.Scoped("replica1").Instant("sched", "balance", 0.75, B("pause", false))
	r.Counter("gpu", "occupancy", 1.75, F("busySMs", 108))
	r.AsyncSpan("requests", "decode", "req-7", 0.75, 1.5, S("ds", "sharegpt"))
	var buf bytes.Buffer
	if err := r.WriteChrome(&buf); err != nil {
		t.Fatal(err)
	}
	want := `[
{"name":"process_name","ph":"M","pid":1,"args":{"name":"main"}},
{"name":"thread_name","ph":"M","pid":1,"tid":1,"args":{"name":"gpu"}},
{"name":"thread_name","ph":"M","pid":1,"tid":2,"args":{"name":"requests"}},
{"name":"process_name","ph":"M","pid":2,"args":{"name":"replica1"}},
{"name":"thread_name","ph":"M","pid":2,"tid":1,"args":{"name":"sched"}},
{"name":"attn","ph":"X","ts":500000,"dur":1250000,"pid":1,"tid":1,"args":{"sms":54,"waveIdle":0.25}},
{"name":"balance","ph":"i","s":"t","ts":750000,"pid":2,"tid":1,"args":{"pause":false}},
{"name":"decode","cat":"requests","ph":"b","id":"req-7","ts":750000,"pid":1,"tid":2,"args":{"ds":"sharegpt"}},
{"name":"decode","cat":"requests","ph":"e","id":"req-7","ts":1500000,"pid":1,"tid":2},
{"name":"occupancy","ph":"C","ts":1750000,"pid":1,"tid":1,"args":{"busySMs":108}}
]
`
	if got := buf.String(); got != want {
		t.Fatalf("golden mismatch:\n--- got ---\n%s\n--- want ---\n%s", got, want)
	}
	if !json.Valid(buf.Bytes()) {
		t.Fatal("golden trace is not valid JSON")
	}
}

// TestWriteChromeRejectsNonFinite: NaN/Inf anywhere — timestamps or
// float args — must be rejected with an error naming the event.
func TestWriteChromeRejectsNonFinite(t *testing.T) {
	cases := []func(r *Recorder){
		func(r *Recorder) { r.Instant("lane", "nan-ts", units.Seconds(math.NaN())) },
		func(r *Recorder) { r.Span("lane", "inf-end", 0, units.Inf[units.Seconds](1)) },
		func(r *Recorder) { r.Instant("lane", "nan-arg", 1, F("v", math.NaN())) },
		func(r *Recorder) { r.Counter("lane", "inf-arg", 1, F("v", math.Inf(-1))) },
	}
	for i, mk := range cases {
		r := New(0)
		mk(r)
		if err := r.WriteChrome(&bytes.Buffer{}); err == nil {
			t.Errorf("case %d: non-finite value accepted", i)
		}
	}
	// Counters must be numeric-only.
	r := New(0)
	r.Counter("lane", "c", 1, S("v", "oops"))
	if err := r.WriteChrome(&bytes.Buffer{}); err == nil {
		t.Error("string-valued counter accepted")
	}
}

// TestWriteChromeEscaping: hostile names (quotes, control characters,
// invalid UTF-8) still yield valid JSON, matching encoding/json's
// replacement semantics for bad bytes.
func TestWriteChromeEscaping(t *testing.T) {
	r := New(0)
	r.Instant("la\"ne", "name\nwith\tctl\x01", 1, S("k\\ey", "v\xffal"))
	var buf bytes.Buffer
	if err := r.WriteChrome(&buf); err != nil {
		t.Fatal(err)
	}
	if !json.Valid(buf.Bytes()) {
		t.Fatalf("escaped trace is invalid JSON: %q", buf.String())
	}
	var evs []map[string]any
	if err := json.Unmarshal(buf.Bytes(), &evs); err != nil {
		t.Fatal(err)
	}
	found := false
	for _, e := range evs {
		if e["ph"] == "i" && e["name"] == "name\nwith\tctl\x01" {
			found = true
			if args := e["args"].(map[string]any); args[`k\ey`] != "v\uFFFDal" {
				t.Fatalf("arg round-trip: %#v", args)
			}
		}
	}
	if !found {
		t.Fatal("escaped instant did not round-trip")
	}
}

// TestSummaryContents: the text summary reports lanes in deterministic
// order with span busy time and async id counts.
func TestSummaryContents(t *testing.T) {
	r := New(0)
	r.Span("gpu", "k", 0, 2)
	r.Span("gpu", "k", 3, 4)
	r.AsyncSpan("requests", "prefill", "a", 0, 1)
	r.AsyncSpan("requests", "decode", "a", 1, 2)
	r.AsyncSpan("requests", "prefill", "b", 0, 1)
	r.Scoped("replica1").Instant("sched", "idle", 5)
	got := r.Summary()
	for _, want := range []string{"proc main", "proc replica1", "lane gpu", "2 spans busy", "3.000s", "over 2 ids", "1 instants"} {
		if !strings.Contains(got, want) {
			t.Errorf("summary missing %q:\n%s", want, got)
		}
	}
	if strings.Index(got, "proc main") > strings.Index(got, "proc replica1") {
		t.Errorf("procs out of order:\n%s", got)
	}
}
