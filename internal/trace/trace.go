// Package trace records simulation activity — kernel executions,
// scheduling decisions, request lifecycle events — and exports it as
// JSON, including the Chrome trace-event format (load the file at
// chrome://tracing or https://ui.perfetto.dev to see the spatial-temporal
// orchestration visually, one row per SM partition).
package trace

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"

	"repro/internal/gpusim"
	"repro/internal/sched"
	"repro/internal/sim"
	"repro/internal/units"
)

// EventKind tags recorded events.
type EventKind string

const (
	// KindKernel is a GPU kernel execution span.
	KindKernel EventKind = "kernel"
	// KindDecision is a scheduler decision instant.
	KindDecision EventKind = "decision"
	// KindRequest is a request lifecycle span (arrival to finish).
	KindRequest EventKind = "request"
	// KindPhase is an engine phase span (one prefill batch, one decode
	// iteration).
	KindPhase EventKind = "phase"
)

// Event is one recorded item. Times are unit-typed simulation seconds.
type Event struct {
	Kind  EventKind     `json:"kind"`
	Name  string        `json:"name"`
	Start units.Seconds `json:"start"`
	End   units.Seconds `json:"end,omitempty"` // == Start for instants
	// Lane groups events for display ("prefill", "decode", "hybrid",
	// "sched", "requests").
	Lane string `json:"lane"`
	// Detail carries kind-specific fields.
	Detail map[string]any `json:"detail,omitempty"`
}

// Recorder accumulates events. The zero value is ready to use.
type Recorder struct {
	events []Event
	// MaxEvents caps memory (0 = unlimited); past the cap new events
	// are dropped and Dropped counts them.
	MaxEvents int
	Dropped   int
}

// Add appends an event.
func (r *Recorder) Add(e Event) {
	if r.MaxEvents > 0 && len(r.events) >= r.MaxEvents {
		r.Dropped++
		return
	}
	r.events = append(r.events, e)
}

// Len returns the number of recorded events.
func (r *Recorder) Len() int { return len(r.events) }

// Events returns the recorded events sorted by start time.
func (r *Recorder) Events() []Event {
	out := append([]Event(nil), r.events...)
	sort.SliceStable(out, func(i, j int) bool { return out[i].Start < out[j].Start })
	return out
}

// KernelHook returns a gpusim.Trace callback feeding the recorder, with
// the kernel's tag as the lane.
func (r *Recorder) KernelHook() func(gpusim.KernelRecord) {
	return func(k gpusim.KernelRecord) {
		r.Add(Event{
			Kind: KindKernel, Name: k.Name, Start: k.Start, End: k.End,
			Lane: k.Tag,
			Detail: map[string]any{
				"sms":      k.SMs,
				"flops":    k.FLOPs,
				"bytes":    k.Bytes,
				"grid":     k.Grid,
				"waveIdle": k.WaveIdle,
			},
		})
	}
}

// DecisionHook returns an engine OnDecision callback feeding the recorder.
func (r *Recorder) DecisionHook() func(t sim.Time, d sched.Decision) {
	return func(t sim.Time, d sched.Decision) {
		r.Add(Event{
			Kind: KindDecision, Name: d.Branch, Start: t, End: t, Lane: "sched",
			Detail: map[string]any{
				"prefillSMs": d.PrefillSMs,
				"decodeSMs":  d.DecodeSMs,
				"pause":      d.PauseDecode,
			},
		})
	}
}

// AddRequest records a request lifecycle span.
func (r *Recorder) AddRequest(id string, arrival, firstToken, finish units.Seconds, inTokens, outTokens int) {
	r.Add(Event{
		Kind: KindRequest, Name: id, Start: arrival, End: finish, Lane: "requests",
		Detail: map[string]any{
			"firstToken": firstToken,
			"inTokens":   inTokens,
			"outTokens":  outTokens,
		},
	})
}

// WriteJSON writes the raw event list as a JSON array.
func (r *Recorder) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", " ")
	return enc.Encode(r.Events())
}

// chromeEvent is one entry of the Chrome trace-event format.
type chromeEvent struct {
	Name  string         `json:"name"`
	Cat   string         `json:"cat"`
	Phase string         `json:"ph"`
	TS    float64        `json:"ts"`  // microseconds
	Dur   float64        `json:"dur"` // microseconds
	PID   int            `json:"pid"`
	TID   int            `json:"tid"`
	Args  map[string]any `json:"args,omitempty"`
}

// WriteChromeTrace writes the events in Chrome trace-event format: spans
// as complete ("X") events on one thread row per lane, instants ("i") on
// the scheduler row.
func (r *Recorder) WriteChromeTrace(w io.Writer) error {
	lanes := map[string]int{}
	laneID := func(name string) int {
		if id, ok := lanes[name]; ok {
			return id
		}
		id := len(lanes) + 1
		lanes[name] = id
		return id
	}
	var out []chromeEvent
	for _, e := range r.Events() {
		ce := chromeEvent{
			Name: e.Name,
			Cat:  string(e.Kind),
			TS:   e.Start.Float() * 1e6,
			PID:  1,
			TID:  laneID(e.Lane),
			Args: e.Detail,
		}
		if e.End > e.Start {
			ce.Phase = "X"
			ce.Dur = (e.End - e.Start).Float() * 1e6
		} else {
			ce.Phase = "i"
		}
		out = append(out, ce)
	}
	// Thread name metadata so lanes are labelled in the viewer.
	names := make([]string, 0, len(lanes))
	for n := range lanes {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		out = append(out, chromeEvent{
			Name:  "thread_name",
			Phase: "M",
			PID:   1,
			TID:   lanes[n],
			Args:  map[string]any{"name": n},
		})
	}
	enc := json.NewEncoder(w)
	return enc.Encode(out)
}

// Summary returns per-lane span counts and busy time, a quick sanity view.
func (r *Recorder) Summary() map[string]LaneSummary {
	out := map[string]LaneSummary{}
	for _, e := range r.events {
		s := out[e.Lane]
		s.Events++
		if e.End > e.Start {
			s.BusyTime += e.End - e.Start
		}
		out[e.Lane] = s
	}
	return out
}

// LaneSummary aggregates one lane.
type LaneSummary struct {
	Events   int
	BusyTime units.Seconds
}

// String renders the summary compactly.
func (s LaneSummary) String() string {
	return fmt.Sprintf("%d events, %.3fs busy", s.Events, s.BusyTime)
}
