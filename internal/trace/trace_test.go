package trace

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"

	"repro/internal/gpusim"
	"repro/internal/sched"
	"repro/internal/units"
)

func TestAddAndEventsSorted(t *testing.T) {
	var r Recorder
	r.Add(Event{Kind: KindKernel, Name: "b", Start: 2, End: 3, Lane: "prefill"})
	r.Add(Event{Kind: KindKernel, Name: "a", Start: 1, End: 2, Lane: "prefill"})
	ev := r.Events()
	if len(ev) != 2 || ev[0].Name != "a" || ev[1].Name != "b" {
		t.Fatalf("events = %+v", ev)
	}
	if r.Len() != 2 {
		t.Fatalf("len = %d", r.Len())
	}
}

func TestMaxEventsCap(t *testing.T) {
	r := Recorder{MaxEvents: 2}
	for i := 0; i < 5; i++ {
		r.Add(Event{Name: "x", Start: units.Seconds(i)})
	}
	if r.Len() != 2 || r.Dropped != 3 {
		t.Fatalf("len=%d dropped=%d", r.Len(), r.Dropped)
	}
}

func TestKernelHook(t *testing.T) {
	var r Recorder
	hook := r.KernelHook()
	hook(gpusim.KernelRecord{
		Name: "qkv", Tag: "prefill", Start: 0.1, End: 0.2,
		SMs: 84, FLOPs: 1e12, Bytes: 1e9, Grid: 384, WaveIdle: 0.11,
	})
	ev := r.Events()
	if len(ev) != 1 || ev[0].Lane != "prefill" || ev[0].Detail["sms"] != 84 {
		t.Fatalf("event = %+v", ev)
	}
}

func TestDecisionHook(t *testing.T) {
	var r Recorder
	hook := r.DecisionHook()
	hook(1.5, sched.Decision{Branch: "reduce-decode", PrefillSMs: 84, DecodeSMs: 24})
	ev := r.Events()
	if len(ev) != 1 || ev[0].Kind != KindDecision || ev[0].Start != ev[0].End {
		t.Fatalf("event = %+v", ev)
	}
}

func TestWriteJSON(t *testing.T) {
	var r Recorder
	r.AddRequest("r1", 0, 0.5, 2.0, 100, 10)
	var buf bytes.Buffer
	if err := r.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var back []Event
	if err := json.Unmarshal(buf.Bytes(), &back); err != nil {
		t.Fatal(err)
	}
	if len(back) != 1 || back[0].Name != "r1" || back[0].End != 2.0 {
		t.Fatalf("roundtrip = %+v", back)
	}
}

func TestWriteChromeTrace(t *testing.T) {
	var r Recorder
	r.Add(Event{Kind: KindKernel, Name: "qkv", Start: 0.001, End: 0.002, Lane: "prefill"})
	r.Add(Event{Kind: KindKernel, Name: "step", Start: 0.001, End: 0.003, Lane: "decode"})
	r.Add(Event{Kind: KindDecision, Name: "balance", Start: 0.0015, End: 0.0015, Lane: "sched"})
	var buf bytes.Buffer
	if err := r.WriteChromeTrace(&buf); err != nil {
		t.Fatal(err)
	}
	var raw []map[string]any
	if err := json.Unmarshal(buf.Bytes(), &raw); err != nil {
		t.Fatal(err)
	}
	// 3 events + 3 thread_name metadata entries.
	if len(raw) != 6 {
		t.Fatalf("chrome events = %d", len(raw))
	}
	phases := map[string]int{}
	for _, e := range raw {
		phases[e["ph"].(string)]++
	}
	if phases["X"] != 2 || phases["i"] != 1 || phases["M"] != 3 {
		t.Fatalf("phases = %v", phases)
	}
	// Durations are microseconds.
	for _, e := range raw {
		if e["name"] == "qkv" {
			if dur := e["dur"].(float64); dur < 999 || dur > 1001 {
				t.Fatalf("qkv dur = %v us", dur)
			}
		}
	}
	if !strings.Contains(buf.String(), "thread_name") {
		t.Fatal("missing lane metadata")
	}
}

func TestSummary(t *testing.T) {
	var r Recorder
	r.Add(Event{Kind: KindKernel, Name: "a", Start: 0, End: 1, Lane: "prefill"})
	r.Add(Event{Kind: KindKernel, Name: "b", Start: 1, End: 1.5, Lane: "prefill"})
	r.Add(Event{Kind: KindDecision, Name: "x", Start: 1, End: 1, Lane: "sched"})
	sum := r.Summary()
	if sum["prefill"].Events != 2 || sum["prefill"].BusyTime != 1.5 {
		t.Fatalf("prefill summary = %+v", sum["prefill"])
	}
	if sum["sched"].BusyTime != 0 {
		t.Fatalf("instant accumulated busy time: %+v", sum["sched"])
	}
	if !strings.Contains(sum["prefill"].String(), "2 events") {
		t.Fatalf("string = %s", sum["prefill"])
	}
}
