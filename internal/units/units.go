// Package units gives the simulator's physical quantities distinct Go
// types, so that dimensionally nonsensical arithmetic — adding seconds to
// tokens, dividing FLOPs by bytes — fails to compile instead of silently
// producing a wrong figure. The `unitsafe` analyzer in internal/lint
// enforces the conventions this package establishes (see DESIGN.md,
// "Unit-safety contract"):
//
//   - Quantities are defined types over float64 with identical
//     representation and arithmetic, so migrating a value to a unit type
//     is bit-preserving by construction.
//   - Same-unit addition, subtraction and ordering use the built-in
//     operators; they are dimension-preserving.
//   - Dimension-changing arithmetic (work/rate, rate·time, unit ratios)
//     goes through the explicit helpers below, which each perform exactly
//     one floating-point operation in a documented order.
//   - Scaling by a dimensionless factor uses Scale (multiply) or Over
//     (divide); untyped constants ("t * 2") remain legal because constants
//     are dimensionless.
//   - Leaving the typed world ("laundering") is only legal through the
//     Float methods (or the millisecond helpers), never through a bare
//     float64(x) conversion — that keeps every escape greppable.
//
// The package is intentionally dependency-free (stdlib math only) so the
// lint fixture harness can type-check it in isolation.
package units

import "math"

// The quantity types. All are defined types over float64: conversion to
// and from float64 is representation-preserving, and arithmetic compiles
// to exactly the same operations as on raw float64.
type (
	// Seconds is simulated wall-clock time or a duration.
	Seconds float64
	// FLOPs is arithmetic work (floating-point operations).
	FLOPs float64
	// Bytes is data volume (DRAM traffic, memory footprints, payloads).
	Bytes float64
	// FLOPsPerSec is compute throughput.
	FLOPsPerSec float64
	// BytesPerSec is memory or interconnect bandwidth.
	BytesPerSec float64
	// Tokens is a (possibly fractional) token count.
	Tokens float64
	// SMs is a (possibly fractional) number of streaming multiprocessors,
	// e.g. the contended effective share of an SM mask.
	SMs float64
	// SMSeconds is the integral of SM occupancy over time.
	SMSeconds float64
	// PerSec is a dimensionless progress rate (fraction of a kernel, or
	// of any whole, completed per second).
	PerSec float64
)

// Quantity is the constraint satisfied by every unit type in this
// package. Helpers generic over Quantity are dimension-preserving: they
// never convert one unit into another.
type Quantity interface {
	Seconds | FLOPs | Bytes | FLOPsPerSec | BytesPerSec | Tokens | SMs | SMSeconds | PerSec
}

// Scale returns q·k for a dimensionless factor k.
func Scale[Q Quantity](q Q, k float64) Q { return Q(float64(q) * k) }

// Over returns q/k for a dimensionless divisor k.
func Over[Q Quantity](q Q, k float64) Q { return Q(float64(q) / k) }

// Ratio returns the dimensionless quotient num/den of two like
// quantities.
func Ratio[Q Quantity](num, den Q) float64 { return float64(num) / float64(den) }

// Min returns the smaller of two like quantities.
func Min[Q Quantity](a, b Q) Q { return Q(math.Min(float64(a), float64(b))) }

// Max returns the larger of two like quantities.
func Max[Q Quantity](a, b Q) Q { return Q(math.Max(float64(a), float64(b))) }

// Abs returns |q|.
func Abs[Q Quantity](q Q) Q { return Q(math.Abs(float64(q))) }

// Inf returns the infinity of the given sign in Q (sign >= 0 yields
// +Inf), mirroring math.Inf.
func Inf[Q Quantity](sign int) Q { return Q(math.Inf(sign)) }

// IsInf reports whether q is the infinity of the given sign, mirroring
// math.IsInf.
func IsInf[Q Quantity](q Q, sign int) bool { return math.IsInf(float64(q), sign) }

// IsNaN reports whether q is an IEEE not-a-number.
func IsNaN[Q Quantity](q Q) bool { return math.IsNaN(float64(q)) }

// --- dimension-changing helpers ---------------------------------------
//
// Each helper performs exactly the floating-point operations its formula
// states, in that order, so replacing inline float64 arithmetic with a
// helper is bit-identical.

// Div returns the time to perform w units of work at rate r: w/r.
func (w FLOPs) Div(r FLOPsPerSec) Seconds { return Seconds(float64(w) / float64(r)) }

// Div returns the time to move b bytes at bandwidth r: b/r.
func (b Bytes) Div(r BytesPerSec) Seconds { return Seconds(float64(b) / float64(r)) }

// Per returns the throughput of doing w work in d seconds: w/d.
func (w FLOPs) Per(d Seconds) FLOPsPerSec { return FLOPsPerSec(float64(w) / float64(d)) }

// Per returns the bandwidth of moving b bytes in d seconds: b/d.
func (b Bytes) Per(d Seconds) BytesPerSec { return BytesPerSec(float64(b) / float64(d)) }

// Times returns the work done at rate r over d seconds: r·d.
func (r FLOPsPerSec) Times(d Seconds) FLOPs { return FLOPs(float64(r) * float64(d)) }

// Times returns the bytes moved at bandwidth r over d seconds: r·d.
func (r BytesPerSec) Times(d Seconds) Bytes { return Bytes(float64(r) * float64(d)) }

// Times returns the occupancy integral of m SMs busy for d seconds: m·d.
func (m SMs) Times(d Seconds) SMSeconds { return SMSeconds(float64(m) * float64(d)) }

// Progress returns the fraction-per-second progress rate of a kernel
// with w total FLOPs executing at throughput r: r/w.
func (r FLOPsPerSec) Progress(w FLOPs) PerSec { return PerSec(float64(r) / float64(w)) }

// Progress returns the fraction-per-second progress rate of a kernel
// with b total bytes moving at bandwidth r: r/b.
func (r BytesPerSec) Progress(b Bytes) PerSec { return PerSec(float64(r) / float64(b)) }

// Times returns the fraction of the whole completed at progress rate p
// over d seconds: p·d.
func (p PerSec) Times(d Seconds) float64 { return float64(p) * float64(d) }

// Elapse returns the time for frac of the whole to complete at progress
// rate p: frac/p.
func Elapse(frac float64, p PerSec) Seconds { return Seconds(frac / float64(p)) }

// AtRate returns the instantaneous throughput of a kernel with w total
// FLOPs progressing at rate p: p·w.
func (w FLOPs) AtRate(p PerSec) FLOPsPerSec { return FLOPsPerSec(float64(p) * float64(w)) }

// AtRate returns the instantaneous bandwidth of a kernel with b total
// bytes progressing at rate p: p·b.
func (b Bytes) AtRate(p PerSec) BytesPerSec { return BytesPerSec(float64(p) * float64(b)) }

// Ms returns the duration in milliseconds: s·1000.
func (s Seconds) Ms() float64 { return float64(s) * 1000 }

// FromMs converts a millisecond count to Seconds: ms/1000.
func FromMs(ms float64) Seconds { return Seconds(ms / 1000) }

// --- laundering escapes ------------------------------------------------
//
// Float is the sanctioned way to hand a quantity to dimensionless math
// (logarithms, formatting, external interfaces). A bare float64(x)
// conversion is flagged by unitsafe precisely so these escapes stay
// visible and greppable.

// Float returns the raw value.
func (s Seconds) Float() float64 { return float64(s) }

// Float returns the raw value.
func (w FLOPs) Float() float64 { return float64(w) }

// Float returns the raw value.
func (b Bytes) Float() float64 { return float64(b) }

// Float returns the raw value.
func (r FLOPsPerSec) Float() float64 { return float64(r) }

// Float returns the raw value.
func (r BytesPerSec) Float() float64 { return float64(r) }

// Float returns the raw value.
func (t Tokens) Float() float64 { return float64(t) }

// Float returns the raw value.
func (m SMs) Float() float64 { return float64(m) }

// Float returns the raw value.
func (o SMSeconds) Float() float64 { return float64(o) }

// Float returns the raw value.
func (p PerSec) Float() float64 { return float64(p) }
