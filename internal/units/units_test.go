package units

import (
	"math"
	"testing"
)

// TestBitIdentity pins the contract the gpusim/estimator migration relies
// on: every helper performs exactly the operations its formula states, so
// typed arithmetic is bit-for-bit the raw float64 arithmetic it replaced.
func TestBitIdentity(t *testing.T) {
	w, r := 3.7e12, 312e12
	if got, want := FLOPs(w).Div(FLOPsPerSec(r)).Float(), w/r; got != want {
		t.Errorf("FLOPs.Div = %v, want %v", got, want)
	}
	b, bw := 1.9e9, 2.0e12
	if got, want := Bytes(b).Div(BytesPerSec(bw)).Float(), b/bw; got != want {
		t.Errorf("Bytes.Div = %v, want %v", got, want)
	}
	x, y := 0.1, 0.3
	if got, want := Scale(Seconds(x), y).Float(), x*y; got != want {
		t.Errorf("Scale = %v, want %v", got, want)
	}
	if got, want := Over(Seconds(x), y).Float(), x/y; got != want {
		t.Errorf("Over = %v, want %v", got, want)
	}
	if got, want := Ratio(Seconds(x), Seconds(y)), x/y; got != want {
		t.Errorf("Ratio = %v, want %v", got, want)
	}
	p := BytesPerSec(bw).Progress(Bytes(b))
	if got, want := p.Float(), bw/b; got != want {
		t.Errorf("Progress = %v, want %v", got, want)
	}
	if got, want := Elapse(0.25, p).Float(), 0.25/(bw/b); got != want {
		t.Errorf("Elapse = %v, want %v", got, want)
	}
	if got, want := Bytes(b).AtRate(p).Float(), (bw/b)*b; got != want {
		t.Errorf("Bytes.AtRate = %v, want %v", got, want)
	}
	if got, want := SMs(13.5).Times(Seconds(0.2)).Float(), 13.5*0.2; got != want {
		t.Errorf("SMs.Times = %v, want %v", got, want)
	}
	if got, want := Seconds(0.0042).Ms(), 0.0042*1000; got != want {
		t.Errorf("Ms = %v, want %v", got, want)
	}
	if got, want := FromMs(150).Float(), 150.0/1000; got != want {
		t.Errorf("FromMs = %v, want %v", got, want)
	}
}

// TestInversesAndAccessors completes the bit-identity contract over the
// remaining combinators: each rate/work pairing is the exact inverse of
// its Div counterpart, and every Float accessor is the raw conversion.
func TestInversesAndAccessors(t *testing.T) {
	w, d := 3.7e12, 0.25
	if got, want := FLOPs(w).Per(Seconds(d)).Float(), w/d; got != want {
		t.Errorf("FLOPs.Per = %v, want %v", got, want)
	}
	b := 1.9e9
	if got, want := Bytes(b).Per(Seconds(d)).Float(), b/d; got != want {
		t.Errorf("Bytes.Per = %v, want %v", got, want)
	}
	if got, want := FLOPsPerSec(w).Times(Seconds(d)).Float(), w*d; got != want {
		t.Errorf("FLOPsPerSec.Times = %v, want %v", got, want)
	}
	if got, want := BytesPerSec(b).Times(Seconds(d)).Float(), b*d; got != want {
		t.Errorf("BytesPerSec.Times = %v, want %v", got, want)
	}
	if got, want := FLOPsPerSec(w).Progress(FLOPs(w/2)).Float(), w/(w/2); got != want {
		t.Errorf("FLOPsPerSec.Progress = %v, want %v", got, want)
	}
	p := PerSec(4)
	if got, want := p.Times(Seconds(d)), 4*d; got != want {
		t.Errorf("PerSec.Times = %v, want %v", got, want)
	}
	if got, want := FLOPs(w).AtRate(p).Float(), 4*w; got != want {
		t.Errorf("FLOPs.AtRate = %v, want %v", got, want)
	}
	if Seconds(2).Float() != 2 || FLOPs(2).Float() != 2 || Bytes(2).Float() != 2 ||
		FLOPsPerSec(2).Float() != 2 || BytesPerSec(2).Float() != 2 ||
		Tokens(2).Float() != 2 || SMs(2).Float() != 2 ||
		SMSeconds(2).Float() != 2 || PerSec(2).Float() != 2 {
		t.Error("Float accessor is not the identity conversion")
	}
}

func TestPredicates(t *testing.T) {
	if !IsInf(Inf[Seconds](1), 1) || IsInf(Seconds(1), 0) {
		t.Error("Inf/IsInf mismatch")
	}
	if !IsNaN(Seconds(math.NaN())) || IsNaN(Seconds(0)) {
		t.Error("IsNaN mismatch")
	}
	if Min(Seconds(1), Seconds(2)) != 1 || Max(Seconds(1), Seconds(2)) != 2 {
		t.Error("Min/Max mismatch")
	}
	if Abs(Seconds(-3)) != 3 {
		t.Error("Abs mismatch")
	}
}
