package workload

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/units"
)

// FuzzRead exercises the trace parser with arbitrary input: it must never
// panic, and anything it accepts must satisfy the trace invariants.
func FuzzRead(f *testing.F) {
	var buf bytes.Buffer
	_ = Generate(ShareGPT, 5, 5, 1).Write(&buf)
	f.Add(buf.Bytes())
	f.Add([]byte(`{"dataset":"x","requests":[{"ID":"a","Arrival":1,"InputTokens":5,"OutputTokens":1}]}`))
	f.Add([]byte(`{}`))
	f.Add([]byte(`not json at all`))
	f.Add([]byte(`{"requests":[{"Arrival":-1}]}`))

	f.Fuzz(func(t *testing.T, data []byte) {
		tr, err := Read(bytes.NewReader(data))
		if err != nil {
			return
		}
		if len(tr.Requests) == 0 {
			t.Fatal("accepted empty trace")
		}
		prev := units.Seconds(0)
		seen := map[string]bool{}
		for _, r := range tr.Requests {
			if r.Arrival < prev {
				t.Fatalf("unsorted arrivals: %v after %v", r.Arrival, prev)
			}
			prev = r.Arrival
			if r.InputTokens <= 0 || r.OutputTokens <= 0 {
				t.Fatalf("accepted degenerate request %+v", r)
			}
			if r.ID == "" || seen[r.ID] {
				t.Fatalf("bad id %q", r.ID)
			}
			seen[r.ID] = true
		}
	})
}

// FuzzRoundTrip: writing then reading any generated trace must be the
// identity.
func FuzzRoundTrip(f *testing.F) {
	f.Add(int64(1), uint8(10))
	f.Add(int64(42), uint8(3))
	f.Fuzz(func(t *testing.T, seed int64, nU uint8) {
		n := int(nU%50) + 1
		tr := Generate(AzureCode, 5, n, seed)
		var buf bytes.Buffer
		if err := tr.Write(&buf); err != nil {
			t.Fatal(err)
		}
		back, err := Read(strings.NewReader(buf.String()))
		if err != nil {
			t.Fatal(err)
		}
		if len(back.Requests) != n {
			t.Fatalf("lost requests: %d vs %d", len(back.Requests), n)
		}
		for i := range tr.Requests {
			if tr.Requests[i] != back.Requests[i] {
				t.Fatalf("request %d differs", i)
			}
		}
	})
}
