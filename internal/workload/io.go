// Trace serialization: save generated traces and replay externally
// provided ones (the equivalent of feeding real ShareGPT/Azure CSVs into
// the serving systems).
package workload

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
)

// traceJSON is the on-disk representation.
type traceJSON struct {
	Dataset  string    `json:"dataset"`
	Rate     float64   `json:"rate"`
	Seed     int64     `json:"seed"`
	Requests []Request `json:"requests"`
}

// Write serializes the trace as JSON.
func (t *Trace) Write(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", " ")
	return enc.Encode(traceJSON{Dataset: t.Dataset, Rate: t.Rate, Seed: t.Seed, Requests: t.Requests})
}

// Read parses a JSON trace and validates it: arrivals must be
// nondecreasing (they are sorted if not) and token counts positive.
func Read(r io.Reader) (*Trace, error) {
	var tj traceJSON
	if err := json.NewDecoder(r).Decode(&tj); err != nil {
		return nil, fmt.Errorf("workload: parsing trace: %w", err)
	}
	if len(tj.Requests) == 0 {
		return nil, fmt.Errorf("workload: empty trace")
	}
	sort.SliceStable(tj.Requests, func(i, j int) bool {
		return tj.Requests[i].Arrival < tj.Requests[j].Arrival
	})
	seen := map[string]bool{}
	for i := range tj.Requests {
		rq := &tj.Requests[i]
		if rq.InputTokens <= 0 || rq.OutputTokens <= 0 {
			return nil, fmt.Errorf("workload: request %d has non-positive tokens", i)
		}
		if rq.Arrival < 0 {
			return nil, fmt.Errorf("workload: request %d has negative arrival", i)
		}
		if rq.ID == "" {
			rq.ID = fmt.Sprintf("replay-%d", i)
		}
		if seen[rq.ID] {
			return nil, fmt.Errorf("workload: duplicate request id %q", rq.ID)
		}
		seen[rq.ID] = true
		if rq.Dataset == "" {
			rq.Dataset = tj.Dataset
		}
	}
	return &Trace{Dataset: tj.Dataset, Rate: tj.Rate, Seed: tj.Seed, Requests: tj.Requests}, nil
}
