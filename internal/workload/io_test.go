package workload

import (
	"bytes"
	"math"
	"strings"
	"testing"

	"repro/internal/units"
)

func TestTraceRoundTrip(t *testing.T) {
	tr := Generate(ShareGPT, 5, 40, 3)
	var buf bytes.Buffer
	if err := tr.Write(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if back.Dataset != tr.Dataset || back.Rate != tr.Rate || len(back.Requests) != len(tr.Requests) {
		t.Fatalf("header mismatch: %+v", back)
	}
	for i := range tr.Requests {
		if back.Requests[i] != tr.Requests[i] {
			t.Fatalf("request %d differs", i)
		}
	}
}

func TestReadValidates(t *testing.T) {
	cases := []struct {
		name string
		json string
	}{
		{"empty", `{"dataset":"x","requests":[]}`},
		{"zero tokens", `{"dataset":"x","requests":[{"ID":"a","Arrival":1,"InputTokens":0,"OutputTokens":1}]}`},
		{"negative arrival", `{"dataset":"x","requests":[{"ID":"a","Arrival":-1,"InputTokens":5,"OutputTokens":1}]}`},
		{"duplicate ids", `{"dataset":"x","requests":[
			{"ID":"a","Arrival":1,"InputTokens":5,"OutputTokens":1},
			{"ID":"a","Arrival":2,"InputTokens":5,"OutputTokens":1}]}`},
		{"garbage", `{{{`},
	}
	for _, c := range cases {
		if _, err := Read(strings.NewReader(c.json)); err == nil {
			t.Errorf("%s accepted", c.name)
		}
	}
}

func TestReadSortsAndFillsDefaults(t *testing.T) {
	in := `{"dataset":"sharegpt","requests":[
		{"Arrival":2,"InputTokens":5,"OutputTokens":1},
		{"Arrival":1,"InputTokens":6,"OutputTokens":2}]}`
	tr, err := Read(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if tr.Requests[0].Arrival != 1 || tr.Requests[1].Arrival != 2 {
		t.Fatal("not sorted")
	}
	for _, r := range tr.Requests {
		if r.ID == "" || r.Dataset != "sharegpt" {
			t.Fatalf("defaults not filled: %+v", r)
		}
	}
}

func TestGenerateConstant(t *testing.T) {
	tr := GenerateConstant(AzureCode, 4, 20, 1)
	for i, r := range tr.Requests {
		want := units.Seconds(i+1) / 4
		if units.Abs(r.Arrival-want) > 1e-12 {
			t.Fatalf("arrival %d = %v, want %v", i, r.Arrival, want)
		}
	}
}

func TestGenerateGammaCV(t *testing.T) {
	// Empirical CV of inter-arrival gaps should track the requested CV.
	for _, cv := range []float64{0.5, 1.0, 2.0} {
		tr := GenerateGamma(ShareGPT, 10, cv, 20000, 9)
		var gaps []float64
		prev := units.Seconds(0)
		for _, r := range tr.Requests {
			gaps = append(gaps, (r.Arrival - prev).Float())
			prev = r.Arrival
		}
		mean, varsum := 0.0, 0.0
		for _, g := range gaps {
			mean += g
		}
		mean /= float64(len(gaps))
		for _, g := range gaps {
			varsum += (g - mean) * (g - mean)
		}
		got := math.Sqrt(varsum/float64(len(gaps))) / mean
		if math.Abs(got-cv)/cv > 0.1 {
			t.Errorf("cv = %v, want %v", got, cv)
		}
		// Mean rate ≈ 10 req/s.
		if rate := 1 / mean; math.Abs(rate-10)/10 > 0.1 {
			t.Errorf("rate = %v, want 10", rate)
		}
	}
}

func TestGammaPanicsOnBadArgs(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	GenerateGamma(ShareGPT, 1, 0, 10, 1)
}
