// Package workload generates serving request traces: per-dataset
// input/output length distributions matching the shapes published in the
// paper (Fig. 10) and Poisson arrival processes (§4.1).
//
// The real datasets (ShareGPT conversations, Azure production code
// completions, arXiv long-document summarization) are proprietary or
// external; per the substitution rule we model their published length
// CDFs with truncated lognormals. What the serving systems react to —
// short chatty inputs vs. long code contexts vs. very long documents with
// small outputs — is preserved.
package workload

import (
	"fmt"
	"math"
	"math/rand"
	"sort"

	"repro/internal/units"
)

// Request is one serving request of a trace.
type Request struct {
	ID           string
	Arrival      units.Seconds // seconds since trace start
	InputTokens  int
	OutputTokens int
	Dataset      string
	// PrefixGroup, when non-empty, marks the first PrefixTokens input
	// tokens as shared verbatim with every other request of the same
	// group (a system prompt or few-shot template), the situation
	// radix/prefix caches exploit.
	PrefixGroup  string
	PrefixTokens int
	// Tenant, when non-empty, is the service-class tag of the issuing
	// tenant ("premium", "standard", "best-effort"); the qos subsystem
	// maps it to a class, untagged requests default to standard.
	Tenant string
}

// Trace is a time-ordered request sequence.
type Trace struct {
	Dataset  string
	Rate     float64 // offered load in requests/second
	Seed     int64
	Requests []Request
}

// Duration returns the arrival time of the last request.
func (t *Trace) Duration() units.Seconds {
	if len(t.Requests) == 0 {
		return 0
	}
	return t.Requests[len(t.Requests)-1].Arrival
}

// TotalInputTokens sums input lengths.
func (t *Trace) TotalInputTokens() int {
	n := 0
	for _, r := range t.Requests {
		n += r.InputTokens
	}
	return n
}

// TotalOutputTokens sums output lengths.
func (t *Trace) TotalOutputTokens() int {
	n := 0
	for _, r := range t.Requests {
		n += r.OutputTokens
	}
	return n
}

// lengthDist is a truncated lognormal over token counts.
type lengthDist struct {
	median float64 // exp(mu)
	sigma  float64
	min    int
	max    int
}

func (d lengthDist) sample(rng *rand.Rand) int {
	v := d.median * math.Exp(d.sigma*rng.NormFloat64())
	n := int(math.Round(v))
	if n < d.min {
		n = d.min
	}
	if n > d.max {
		n = d.max
	}
	return n
}

// Dataset describes a named workload's length distributions.
type Dataset struct {
	Name   string
	input  lengthDist
	output lengthDist
}

// The three evaluation workloads of the paper (§4.1, Fig. 10).
var (
	// ShareGPT: real-world conversations; moderate inputs, chatty
	// outputs.
	ShareGPT = Dataset{
		Name:   "sharegpt",
		input:  lengthDist{median: 300, sigma: 1.1, min: 4, max: 8192},
		output: lengthDist{median: 180, sigma: 0.9, min: 4, max: 2048},
	}
	// AzureCode: production code completion; long prompts, very short
	// completions.
	AzureCode = Dataset{
		Name:   "azure-code",
		input:  lengthDist{median: 2048, sigma: 0.9, min: 64, max: 16384},
		output: lengthDist{median: 28, sigma: 0.8, min: 1, max: 512},
	}
	// ArxivSummary: long-document summarization; very long prompts,
	// moderate outputs.
	ArxivSummary = Dataset{
		Name:   "arxiv-summary",
		input:  lengthDist{median: 7500, sigma: 0.45, min: 512, max: 24576},
		output: lengthDist{median: 180, sigma: 0.45, min: 16, max: 1024},
	}
)

// Datasets lists the three evaluation workloads in paper order.
var Datasets = []Dataset{ShareGPT, AzureCode, ArxivSummary}

// ByName returns the dataset with the given name.
func ByName(name string) (Dataset, error) {
	for _, d := range Datasets {
		if d.Name == name {
			return d, nil
		}
	}
	return Dataset{}, fmt.Errorf("workload: unknown dataset %q", name)
}

// SampleInput draws an input length.
func (d Dataset) SampleInput(rng *rand.Rand) int { return d.input.sample(rng) }

// SampleOutput draws an output length.
func (d Dataset) SampleOutput(rng *rand.Rand) int { return d.output.sample(rng) }

// Generate produces a trace of n requests with Poisson arrivals at rate
// req/s, deterministically from seed.
func Generate(d Dataset, rate float64, n int, seed int64) *Trace {
	if rate <= 0 || n <= 0 {
		panic(fmt.Sprintf("workload: invalid trace rate=%v n=%d", rate, n))
	}
	rng := rand.New(rand.NewSource(seed))
	tr := &Trace{Dataset: d.Name, Rate: rate, Seed: seed, Requests: make([]Request, n)}
	t := 0.0
	for i := 0; i < n; i++ {
		t += rng.ExpFloat64() / rate
		tr.Requests[i] = Request{
			ID:           fmt.Sprintf("%s-%d", d.Name, i),
			Arrival:      units.Seconds(t),
			InputTokens:  d.SampleInput(rng),
			OutputTokens: d.SampleOutput(rng),
			Dataset:      d.Name,
		}
	}
	return tr
}

// GenerateBursty produces a trace whose rate alternates between baseRate
// and burstFactor*baseRate every period seconds, exercising the dynamic
// re-provisioning scenario of Fig. 12.
func GenerateBursty(d Dataset, baseRate, burstFactor, period float64, n int, seed int64) *Trace {
	if baseRate <= 0 || burstFactor < 1 || period <= 0 || n <= 0 {
		panic("workload: invalid bursty trace parameters")
	}
	rng := rand.New(rand.NewSource(seed))
	tr := &Trace{Dataset: d.Name, Rate: baseRate, Seed: seed, Requests: make([]Request, n)}
	t := 0.0
	for i := 0; i < n; i++ {
		rate := baseRate
		if math.Mod(t, 2*period) >= period {
			rate = baseRate * burstFactor
		}
		t += rng.ExpFloat64() / rate
		tr.Requests[i] = Request{
			ID:           fmt.Sprintf("%s-b%d", d.Name, i),
			Arrival:      units.Seconds(t),
			InputTokens:  d.SampleInput(rng),
			OutputTokens: d.SampleOutput(rng),
			Dataset:      d.Name,
		}
	}
	return tr
}

// GenerateShared produces a Poisson trace in which each request belongs
// to one of groups shared-prefix families with probability shareProb; the
// family's common prefix is prefixTokens long and counts toward the
// request's InputTokens.
func GenerateShared(d Dataset, rate float64, n int, seed int64, groups, prefixTokens int, shareProb float64) *Trace {
	if groups <= 0 || prefixTokens <= 0 || shareProb < 0 || shareProb > 1 {
		panic(fmt.Sprintf("workload: invalid shared-prefix parameters groups=%d prefix=%d p=%v",
			groups, prefixTokens, shareProb))
	}
	tr := Generate(d, rate, n, seed)
	rng := rand.New(rand.NewSource(seed + 1))
	for i := range tr.Requests {
		if rng.Float64() >= shareProb {
			continue
		}
		r := &tr.Requests[i]
		r.PrefixGroup = fmt.Sprintf("%s/sys%d", d.Name, rng.Intn(groups))
		r.PrefixTokens = prefixTokens
		if r.InputTokens < prefixTokens+1 {
			r.InputTokens = prefixTokens + 1 + rng.Intn(64)
		}
	}
	return tr
}

// TenantMix is the tenant composition of a mixed-class trace: the
// fraction of requests tagged with each class. Fractions must be
// nonnegative and sum to 1 (within rounding).
type TenantMix struct {
	Premium    float64
	Standard   float64
	BestEffort float64
}

// DefaultTenantMix is the ext-qos evaluation mix: a small premium
// population behind a large best-effort background.
func DefaultTenantMix() TenantMix {
	return TenantMix{Premium: 0.2, Standard: 0.3, BestEffort: 0.5}
}

// GenerateTenantMix produces a Poisson trace whose requests are tagged
// with tenant classes drawn from mix. The base trace is Generate(d,
// rate, n, seed) exactly — arrivals and lengths are untouched — and the
// class assignment uses an independent stream (seed+2), mirroring how
// GenerateShared layers prefix families, so tagging never perturbs the
// traffic the engines see.
func GenerateTenantMix(d Dataset, rate float64, n int, seed int64, mix TenantMix) *Trace {
	if mix.Premium < 0 || mix.Standard < 0 || mix.BestEffort < 0 {
		panic(fmt.Sprintf("workload: negative tenant mix %+v", mix))
	}
	total := mix.Premium + mix.Standard + mix.BestEffort
	if math.Abs(total-1) > 1e-9 {
		panic(fmt.Sprintf("workload: tenant mix sums to %v, want 1: %+v", total, mix))
	}
	tr := Generate(d, rate, n, seed)
	rng := rand.New(rand.NewSource(seed + 2))
	for i := range tr.Requests {
		u := rng.Float64()
		switch {
		case u < mix.Premium:
			tr.Requests[i].Tenant = "premium"
		case u < mix.Premium+mix.Standard:
			tr.Requests[i].Tenant = "standard"
		default:
			tr.Requests[i].Tenant = "best-effort"
		}
	}
	return tr
}

// GenerateConstant produces a trace with deterministic, evenly spaced
// arrivals at rate req/s (zero arrival jitter — the lowest-variance
// arrival process, useful to isolate scheduling effects from burstiness).
func GenerateConstant(d Dataset, rate float64, n int, seed int64) *Trace {
	if rate <= 0 || n <= 0 {
		panic(fmt.Sprintf("workload: invalid trace rate=%v n=%d", rate, n))
	}
	rng := rand.New(rand.NewSource(seed))
	tr := &Trace{Dataset: d.Name, Rate: rate, Seed: seed, Requests: make([]Request, n)}
	for i := 0; i < n; i++ {
		tr.Requests[i] = Request{
			ID:           fmt.Sprintf("%s-c%d", d.Name, i),
			Arrival:      units.Seconds(float64(i+1) / rate),
			InputTokens:  d.SampleInput(rng),
			OutputTokens: d.SampleOutput(rng),
			Dataset:      d.Name,
		}
	}
	return tr
}

// GenerateGamma produces arrivals with a gamma-distributed inter-arrival
// time of the given coefficient of variation (cv=1 reduces to Poisson;
// cv>1 is burstier, cv<1 smoother), following the methodology of
// burstiness-sensitivity studies.
func GenerateGamma(d Dataset, rate, cv float64, n int, seed int64) *Trace {
	if rate <= 0 || n <= 0 || cv <= 0 {
		panic(fmt.Sprintf("workload: invalid gamma trace rate=%v cv=%v n=%d", rate, cv, n))
	}
	rng := rand.New(rand.NewSource(seed))
	// Gamma(shape k, scale θ): mean kθ, cv = 1/sqrt(k).
	k := 1 / (cv * cv)
	theta := 1 / (rate * k)
	sampleGamma := func() float64 {
		// Marsaglia–Tsang for k ≥ 1; boost for k < 1.
		kk := k
		boost := 1.0
		if kk < 1 {
			boost = math.Pow(rng.Float64(), 1/kk)
			kk++
		}
		dd := kk - 1.0/3.0
		c := 1 / math.Sqrt(9*dd)
		for {
			x := rng.NormFloat64()
			v := 1 + c*x
			if v <= 0 {
				continue
			}
			v = v * v * v
			u := rng.Float64()
			if u < 1-0.0331*x*x*x*x || math.Log(u) < 0.5*x*x+dd*(1-v+math.Log(v)) {
				return boost * dd * v * theta
			}
		}
	}
	tr := &Trace{Dataset: d.Name, Rate: rate, Seed: seed, Requests: make([]Request, n)}
	t := 0.0
	for i := 0; i < n; i++ {
		t += sampleGamma()
		tr.Requests[i] = Request{
			ID:           fmt.Sprintf("%s-g%d", d.Name, i),
			Arrival:      units.Seconds(t),
			InputTokens:  d.SampleInput(rng),
			OutputTokens: d.SampleOutput(rng),
			Dataset:      d.Name,
		}
	}
	return tr
}

// CDF returns the empirical quantiles of a sample at the given probe
// points (each in [0,1]).
func CDF(samples []int, probes []float64) []int {
	if len(samples) == 0 {
		return make([]int, len(probes))
	}
	s := append([]int(nil), samples...)
	sort.Ints(s)
	out := make([]int, len(probes))
	for i, p := range probes {
		if p < 0 {
			p = 0
		}
		if p > 1 {
			p = 1
		}
		idx := int(p * float64(len(s)-1))
		out[i] = s[idx]
	}
	return out
}

// InputLengths extracts the input lengths of a trace.
func (t *Trace) InputLengths() []int {
	out := make([]int, len(t.Requests))
	for i, r := range t.Requests {
		out[i] = r.InputTokens
	}
	return out
}

// OutputLengths extracts the output lengths of a trace.
func (t *Trace) OutputLengths() []int {
	out := make([]int, len(t.Requests))
	for i, r := range t.Requests {
		out[i] = r.OutputTokens
	}
	return out
}
