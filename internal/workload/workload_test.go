package workload

import (
	"math"
	"sort"
	"testing"
	"testing/quick"

	"repro/internal/units"
)

func TestGenerateDeterministic(t *testing.T) {
	a := Generate(ShareGPT, 10, 100, 42)
	b := Generate(ShareGPT, 10, 100, 42)
	if len(a.Requests) != len(b.Requests) {
		t.Fatal("length mismatch")
	}
	for i := range a.Requests {
		if a.Requests[i] != b.Requests[i] {
			t.Fatalf("request %d differs: %+v vs %+v", i, a.Requests[i], b.Requests[i])
		}
	}
	c := Generate(ShareGPT, 10, 100, 43)
	same := true
	for i := range a.Requests {
		if a.Requests[i].InputTokens != c.Requests[i].InputTokens {
			same = false
			break
		}
	}
	if same {
		t.Fatal("different seeds produced identical traces")
	}
}

func TestArrivalsSortedAndPositive(t *testing.T) {
	tr := Generate(AzureCode, 5, 500, 1)
	prev := units.Seconds(0)
	for _, r := range tr.Requests {
		if r.Arrival <= prev {
			t.Fatalf("non-increasing arrival %v after %v", r.Arrival, prev)
		}
		prev = r.Arrival
		if r.InputTokens < 1 || r.OutputTokens < 1 {
			t.Fatalf("degenerate lengths: %+v", r)
		}
	}
}

func TestPoissonRate(t *testing.T) {
	tr := Generate(ShareGPT, 20, 5000, 7)
	// Empirical rate should be within ~5% of 20 req/s for 5000 samples.
	rate := float64(len(tr.Requests)) / tr.Duration().Float()
	if rate < 19 || rate > 21 {
		t.Fatalf("empirical rate = %v, want ≈ 20", rate)
	}
}

func TestDatasetShapes(t *testing.T) {
	// The three datasets must preserve their characteristic shapes:
	// Azure-Code has much longer inputs than ShareGPT and tiny outputs;
	// arXiv has the longest inputs.
	n := 4000
	med := func(d Dataset, input bool) float64 {
		tr := Generate(d, 1, n, 99)
		var v []int
		if input {
			v = tr.InputLengths()
		} else {
			v = tr.OutputLengths()
		}
		sort.Ints(v)
		return float64(v[n/2])
	}
	shIn, azIn, arIn := med(ShareGPT, true), med(AzureCode, true), med(ArxivSummary, true)
	shOut, azOut := med(ShareGPT, false), med(AzureCode, false)
	if !(arIn > azIn && azIn > shIn) {
		t.Fatalf("input medians not ordered: sharegpt=%v azure=%v arxiv=%v", shIn, azIn, arIn)
	}
	if azOut >= shOut/2 {
		t.Fatalf("azure outputs (%v) should be much shorter than sharegpt (%v)", azOut, shOut)
	}
	if math.Abs(shIn-300)/300 > 0.35 {
		t.Fatalf("sharegpt input median = %v, want ≈ 300", shIn)
	}
}

func TestByName(t *testing.T) {
	for _, d := range Datasets {
		got, err := ByName(d.Name)
		if err != nil || got.Name != d.Name {
			t.Fatalf("ByName(%q) = %v, %v", d.Name, got.Name, err)
		}
	}
	if _, err := ByName("nope"); err == nil {
		t.Fatal("unknown dataset accepted")
	}
}

func TestCDF(t *testing.T) {
	samples := []int{5, 1, 3, 2, 4}
	got := CDF(samples, []float64{0, 0.5, 1})
	if got[0] != 1 || got[1] != 3 || got[2] != 5 {
		t.Fatalf("CDF = %v", got)
	}
	if out := CDF(nil, []float64{0.5}); out[0] != 0 {
		t.Fatal("empty-sample CDF should be zero")
	}
	// Out-of-range probes clamp.
	got = CDF(samples, []float64{-1, 2})
	if got[0] != 1 || got[1] != 5 {
		t.Fatalf("clamped CDF = %v", got)
	}
}

func TestBurstyTrace(t *testing.T) {
	tr := GenerateBursty(AzureCode, 2, 5, 10, 2000, 3)
	if len(tr.Requests) != 2000 {
		t.Fatal("wrong request count")
	}
	// Count arrivals in calm vs burst windows; burst windows should hold
	// clearly more.
	calm, burst := 0, 0
	for _, r := range tr.Requests {
		if math.Mod(r.Arrival.Float(), 20) >= 10 {
			burst++
		} else {
			calm++
		}
	}
	if burst < calm*2 {
		t.Fatalf("burst=%d calm=%d: burstiness not visible", burst, calm)
	}
}

func TestTotals(t *testing.T) {
	tr := Generate(ShareGPT, 10, 50, 5)
	in, out := 0, 0
	for _, r := range tr.Requests {
		in += r.InputTokens
		out += r.OutputTokens
	}
	if tr.TotalInputTokens() != in || tr.TotalOutputTokens() != out {
		t.Fatal("totals mismatch")
	}
}

// Property: CDF output is monotone in the probe points.
func TestPropertyCDFMonotone(t *testing.T) {
	f := func(seed int64, nU uint8) bool {
		tr := Generate(ShareGPT, 5, int(nU%200)+1, seed)
		probes := []float64{0, 0.1, 0.25, 0.5, 0.75, 0.9, 0.99, 1}
		cdf := CDF(tr.InputLengths(), probes)
		for i := 1; i < len(cdf); i++ {
			if cdf[i] < cdf[i-1] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// Property: all sampled lengths respect the dataset bounds.
func TestPropertyLengthBounds(t *testing.T) {
	f := func(seed int64) bool {
		for _, d := range Datasets {
			tr := Generate(d, 1, 50, seed)
			for _, r := range tr.Requests {
				if r.InputTokens < d.input.min || r.InputTokens > d.input.max ||
					r.OutputTokens < d.output.min || r.OutputTokens > d.output.max {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkGenerate(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_ = Generate(ShareGPT, 10, 1000, int64(i))
	}
}
